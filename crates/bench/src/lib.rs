//! # `sl-bench` — experiment harness
//!
//! Shared plumbing for the figure/table regeneration binaries
//! (`fig2`, `fig3a`, `fig3b`, `table1`, `ablation`) and the criterion
//! micro/macro benches. Each binary prints the paper-comparable rows to
//! stdout and writes CSV series under `results/`.
//!
//! Two profiles, selected by the `SLM_PROFILE` environment variable:
//!
//! * `quick` (default): a 4,000-frame scene, ≤ 30 epochs, subsampled
//!   validation — every experiment finishes in minutes on a laptop.
//! * `full`: the paper's 13,228-frame scene and ≤ 100-epoch budget.
//!
//! Both profiles use the paper's architecture, hyper-parameters and
//! channel model; only the trace length and epoch budget differ.

use std::fs;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_core::{ExperimentConfig, PoolingDim, Scheme};
use sl_scene::{Scene, SceneConfig, SequenceDataset};

/// Experiment scale profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Minutes-scale runs (default).
    Quick,
    /// The paper's full scale.
    Full,
}

impl Profile {
    /// Reads `SLM_PROFILE` (`quick` | `full`), defaulting to quick.
    pub fn from_env() -> Self {
        match std::env::var("SLM_PROFILE").as_deref() {
            Ok("full") => Profile::Full,
            _ => Profile::Quick,
        }
    }

    /// Scene frames for this profile.
    pub fn num_frames(self) -> usize {
        match self {
            Profile::Quick => 4_000,
            Profile::Full => 13_228,
        }
    }

    /// Epoch budget for this profile.
    pub fn max_epochs(self) -> usize {
        match self {
            Profile::Quick => 30,
            Profile::Full => 100,
        }
    }

    /// Validation subsample cap.
    pub fn val_subsample(self) -> Option<usize> {
        match self {
            Profile::Quick => Some(256),
            Profile::Full => Some(1_024),
        }
    }

    /// UE CNN hidden channels (the quick profile halves the paper's 8 —
    /// measured accuracy difference on the synthetic scene is < 0.1 dB,
    /// wall time halves).
    pub fn conv_channels(self) -> usize {
        match self {
            Profile::Quick => 4,
            Profile::Full => 8,
        }
    }
}

/// The seed every harness uses for the scene (so figures share one
/// trace).
pub const SCENE_SEED: u64 = 1;

/// Builds the shared scene + dataset for a profile.
pub fn build_dataset(profile: Profile) -> SequenceDataset {
    let config = SceneConfig {
        num_frames: profile.num_frames(),
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(SCENE_SEED);
    let scene = Scene::generate(config, &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

/// The shared scene object (for harnesses that need geometry access).
pub fn build_scene(profile: Profile) -> Scene {
    let config = SceneConfig {
        num_frames: profile.num_frames(),
        ..SceneConfig::paper()
    };
    Scene::generate(config, &mut StdRng::seed_from_u64(SCENE_SEED))
}

/// The paper experiment config adjusted to `profile`.
pub fn experiment_config(
    profile: Profile,
    scheme: Scheme,
    pooling: PoolingDim,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(scheme, pooling);
    cfg.max_epochs = profile.max_epochs();
    cfg.val_subsample = profile.val_subsample();
    cfg.conv_channels = profile.conv_channels();
    cfg
}

/// The `results/` output directory (created on demand), next to the
/// workspace root when run via `cargo run -p sl-bench`, else the CWD.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("results dir is creatable");
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench at compile time; its grandparent
    // is the workspace root. Falls back to the CWD when moved.
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf);
    match compiled {
        Some(p) if p.join("Cargo.toml").exists() => p,
        _ => PathBuf::from("."),
    }
}

/// Writes CSV rows (first row = header) to `results/<name>`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("results file is writable");
    path
}

/// Renders a down-sampled ASCII sparkline of a learning curve for the
/// stdout report.
pub fn sparkline(values: &[f32]) -> String {
    const GLYPHS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);
    values
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * (GLYPHS.len() - 1) as f32).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parameters() {
        assert_eq!(Profile::Quick.num_frames(), 4_000);
        assert_eq!(Profile::Full.num_frames(), 13_228);
        assert!(Profile::Quick.max_epochs() < Profile::Full.max_epochs());
    }

    #[test]
    fn experiment_config_respects_profile() {
        let cfg = experiment_config(Profile::Quick, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        assert_eq!(cfg.max_epochs, 30);
        assert_eq!(cfg.batch_size, 64); // paper constant untouched
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.contains('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn csv_written_under_results() {
        let p = write_csv("_test.csv", "a,b", &["1,2".into()]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(p).unwrap();
    }
}
