//! `slm-report` — run reports, trajectory tracking and the regression
//! gate.
//!
//! Reads the artifacts one [`crate::Experiment`] leaves under
//! `results/<exp>/` (`manifest.json`, `snapshot.json` and the JSONL
//! journal) and turns them into:
//!
//! * a **markdown run report** — config fingerprints, the simulated
//!   compute/airtime split, a per-layer host-time/FLOP table from the
//!   `nn.{ue,bs}.layer.*` profiler metrics, health events and the
//!   paper-comparable metrics;
//! * a **trajectory entry** appended to `results/BENCH_<exp>.json`, one
//!   per reported run, so metric drift is visible across sessions;
//! * a **check** ([`check`]) comparing the fresh entry against the last
//!   trajectory entry with the same profile + config fingerprint —
//!   `slm-report --check` exits non-zero when RMSE or simulated time
//!   regress beyond tolerance, which `scripts/verify.sh` uses as a gate.
//!
//! Everything is hand-rolled on `sl-telemetry`'s JSON reader/writer; no
//! external dependencies.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use sl_telemetry::json::{self, JsonArray, JsonObject, JsonValue};
use sl_telemetry::{
    check_spans, latency_breakdown, spans_from_jsonl, SeriesStore, Snapshot, SpanRecord,
};

use crate::fnv1a_64;

/// One `health.*` journal event, as read back from the JSONL file.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Event kind (`health.diverged`).
    pub kind: String,
    /// The offending metric (`loss_ema`, `update_ratio`, ...).
    pub metric: String,
    /// Human-readable verdict line.
    pub detail: String,
    /// Configured action when it fired (`warn` | `abort`).
    pub action: String,
}

/// Everything loaded from one `results/<exp>/` directory.
#[derive(Debug, Clone)]
pub struct RunData {
    /// The directory the run was loaded from.
    pub dir: PathBuf,
    /// Experiment name (manifest `experiment`).
    pub name: String,
    /// Profile name (manifest `profile`).
    pub profile: String,
    /// Per-run config fingerprints (manifest `runs[].config_hash`).
    pub config_hashes: Vec<String>,
    /// Run labels, parallel to `config_hashes`.
    pub run_labels: Vec<String>,
    /// Host wall time of the whole experiment, seconds.
    pub wall_s: f64,
    /// The final metrics snapshot.
    pub snapshot: Snapshot,
    /// `health.*` events found in the journal.
    pub health_events: Vec<HealthEvent>,
    /// `trace.span` records found in the journal (empty unless the run
    /// was made with `SLM_TRACE=on`).
    pub spans: Vec<SpanRecord>,
    /// Sampled time-series (`series.jsonl`), absent for runs made
    /// before the series store existed or with telemetry off.
    pub series: Option<SeriesStore>,
}

impl RunData {
    /// One fingerprint for the whole experiment: FNV-1a over the
    /// concatenated per-run config hashes (order-sensitive).
    pub fn combined_config_hash(&self) -> String {
        format!("{:016x}", fnv1a_64(self.config_hashes.join(",").as_bytes()))
    }
}

/// Loads `manifest.json`, `snapshot.json` and the `<exp>.jsonl` journal
/// from `dir`. The snapshot is required (run the experiment with
/// `SLM_TELEMETRY=summary|jsonl`); the journal is optional.
pub fn load_run(dir: &Path) -> Result<RunData, String> {
    let manifest_path = dir.join("manifest.json");
    let manifest_text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let manifest =
        json::parse(&manifest_text).map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let name = manifest
        .get("experiment")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{}: missing \"experiment\"", manifest_path.display()))?
        .to_string();
    let profile = manifest
        .get("profile")
        .and_then(JsonValue::as_str)
        .unwrap_or("unknown")
        .to_string();
    let wall_s = manifest
        .get("wall_s")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let mut config_hashes = Vec::new();
    let mut run_labels = Vec::new();
    if let Some(runs) = manifest.get("runs").and_then(JsonValue::as_arr) {
        for r in runs {
            if let Some(h) = r.get("config_hash").and_then(JsonValue::as_str) {
                config_hashes.push(h.to_string());
                run_labels.push(
                    r.get("label")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?")
                        .to_string(),
                );
            }
        }
    }

    let snap_path = dir.join("snapshot.json");
    let snap_text = fs::read_to_string(&snap_path).map_err(|e| {
        format!(
            "{}: {e} (was the run made with SLM_TELEMETRY=off?)",
            snap_path.display()
        )
    })?;
    let snapshot =
        Snapshot::from_json(&snap_text).map_err(|e| format!("{}: {e}", snap_path.display()))?;

    let journal_path = dir.join(format!("{name}.jsonl"));
    let health_events = load_health_events(&journal_path);
    let spans = fs::read_to_string(&journal_path)
        .map(|t| spans_from_jsonl(&t))
        .unwrap_or_default();
    // Best-effort like the journal: a missing or malformed series file
    // just means no Time-series section.
    let series = fs::read_to_string(dir.join("series.jsonl"))
        .ok()
        .and_then(|t| SeriesStore::from_jsonl(&t).ok());

    Ok(RunData {
        dir: dir.to_path_buf(),
        name,
        profile,
        config_hashes,
        run_labels,
        wall_s,
        snapshot,
        health_events,
        spans,
        series,
    })
}

/// Scans a JSONL journal for `health.*` events; a missing file or
/// malformed lines yield an empty/partial list, never an error (the
/// journal is best-effort by design).
fn load_health_events(path: &Path) -> Vec<HealthEvent> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Ok(v) = json::parse(line) else { continue };
        let Some(kind) = v.get("event").and_then(JsonValue::as_str) else {
            continue;
        };
        if !kind.starts_with("health.") {
            continue;
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string()
        };
        out.push(HealthEvent {
            kind: kind.to_string(),
            metric: field("metric"),
            detail: field("detail"),
            action: field("action"),
        });
    }
    out
}

/// One row of the per-layer profile table, rebuilt from the
/// `nn.<side>.layer.<idx>.<name>.*` metrics the profiler published.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Which half of the split model (`ue` | `bs`).
    pub side: String,
    /// Layer index within its [`sl_nn::Sequential`].
    pub idx: usize,
    /// Layer display name.
    pub name: String,
    /// Total forward host seconds.
    pub fwd_s: f64,
    /// Forward invocations.
    pub fwd_calls: u64,
    /// Median forward host seconds per call.
    pub fwd_p50_s: f64,
    /// Total backward host seconds.
    pub bwd_s: f64,
    /// Backward invocations.
    pub bwd_calls: u64,
    /// Modelled FLOPs accumulated across all invocations.
    pub flops: f64,
    /// Trainable parameters.
    pub params: u64,
}

impl LayerRow {
    /// Forward + backward host seconds.
    pub fn host_s(&self) -> f64 {
        self.fwd_s + self.bwd_s
    }
}

/// Rebuilds the per-layer table from a snapshot. Rows are sorted UE
/// first, then BS, by layer index — i.e. in forward order across the
/// split point.
pub fn layer_rows(snap: &Snapshot) -> Vec<LayerRow> {
    use std::collections::BTreeMap;
    // Key: (side_rank, side, idx, name) so UE sorts before BS.
    let mut rows: BTreeMap<(u8, String, usize, String), LayerRow> = BTreeMap::new();
    for (key, hist) in &snap.histograms {
        let Some((side, idx, name, dir)) = parse_layer_key(key) else {
            continue;
        };
        let rank = if side == "ue" { 0 } else { 1 };
        let entry = rows
            .entry((rank, side.to_string(), idx, name.to_string()))
            .or_insert_with(|| LayerRow {
                side: side.to_string(),
                idx,
                name: name.to_string(),
                fwd_s: 0.0,
                fwd_calls: 0,
                fwd_p50_s: 0.0,
                bwd_s: 0.0,
                bwd_calls: 0,
                flops: 0.0,
                params: 0,
            });
        // Satellite contract: read sums/counts/quantiles through the
        // Histogram API, not by re-deriving them from raw JSON buckets.
        match dir {
            "fwd" => {
                entry.fwd_s = hist.sum();
                entry.fwd_calls = hist.count();
                entry.fwd_p50_s = hist.quantile(0.5).unwrap_or(0.0);
            }
            _ => {
                entry.bwd_s = hist.sum();
                entry.bwd_calls = hist.count();
            }
        }
        let base = format!("nn.{side}.layer.{idx}.{name}");
        entry.flops = snap.gauge(&format!("{base}.flops")).unwrap_or(0.0);
        entry.params = snap.gauge(&format!("{base}.params")).unwrap_or(0.0) as u64;
    }
    rows.into_values().collect()
}

/// Splits `nn.<side>.layer.<idx>.<name>.{fwd|bwd}.host_s` into its
/// parts; `None` for keys of any other shape.
fn parse_layer_key(key: &str) -> Option<(&str, usize, &str, &str)> {
    let rest = key.strip_prefix("nn.")?;
    let (rest, dir) = if let Some(r) = rest.strip_suffix(".fwd.host_s") {
        (r, "fwd")
    } else if let Some(r) = rest.strip_suffix(".bwd.host_s") {
        (r, "bwd")
    } else {
        return None;
    };
    let (side, rest) = rest.split_once(".layer.")?;
    let (idx, name) = rest.split_once('.')?;
    Some((side, idx.parse().ok()?, name, dir))
}

/// The paper-comparable / gate-relevant metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Final validation RMSE, dB (gauge `train.val_rmse_db`).
    pub val_rmse_db: Option<f64>,
    /// Applied SGD steps.
    pub steps_applied: u64,
    /// Link-voided steps.
    pub steps_voided: u64,
    /// Simulated compute seconds.
    pub sim_compute_s: f64,
    /// Simulated airtime seconds.
    pub sim_airtime_s: f64,
    /// Host seconds inside `model.forward`/`model.backward`
    /// (histogram `train.model.host_s`).
    pub model_host_s: f64,
    /// Host seconds summed over the per-layer profile.
    pub layer_host_s: f64,
    /// Median per-step host seconds.
    pub step_p50_s: Option<f64>,
    /// Non-finite loss + gradient observations.
    pub nonfinite: u64,
}

impl RunMetrics {
    /// Simulated elapsed seconds (the Fig. 3a axis).
    pub fn sim_elapsed_s(&self) -> f64 {
        self.sim_compute_s + self.sim_airtime_s
    }

    /// `layer_host_s / model_host_s` — how much of the trainer's model
    /// time the per-layer profiler accounts for (1.0 = perfect).
    pub fn profile_coverage(&self) -> Option<f64> {
        (self.model_host_s > 0.0).then(|| self.layer_host_s / self.model_host_s)
    }
}

/// Extracts [`RunMetrics`] from a loaded run.
pub fn run_metrics(run: &RunData) -> RunMetrics {
    let snap = &run.snapshot;
    let layer_host_s: f64 = layer_rows(snap).iter().map(LayerRow::host_s).sum();
    RunMetrics {
        val_rmse_db: snap.gauge("train.val_rmse_db"),
        steps_applied: snap.counter("train.steps.applied"),
        steps_voided: snap.counter("train.steps.voided"),
        sim_compute_s: snap.gauge("sim.compute_s").unwrap_or(0.0),
        sim_airtime_s: snap.gauge("sim.airtime_s").unwrap_or(0.0),
        model_host_s: snap
            .histograms
            .get("train.model.host_s")
            .map(|h| h.sum())
            .unwrap_or(0.0),
        layer_host_s,
        step_p50_s: snap
            .histograms
            .get("train.step.host_s")
            .and_then(|h| h.quantile(0.5)),
        nonfinite: snap.counter("train.nonfinite.loss") + snap.counter("train.nonfinite.grad"),
    }
}

/// Summary of the latest `slm-lint` run, read back from the JSON the
/// `lint` stage of `scripts/verify.sh` writes to `results/lint.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintSummary {
    /// No active findings (allowlist exactly covers the remainder).
    pub clean: bool,
    /// `.rs` files scanned.
    pub files_scanned: u64,
    /// Burn-down allowlist size — the number that must only shrink.
    pub allowlist_len: u64,
    /// Findings absorbed by the allowlist.
    pub allowlisted: u64,
    /// Findings suppressed by inline documented waivers.
    pub waived: u64,
    /// Active findings (non-zero means the lint gate failed).
    pub findings: u64,
    /// Per-rule counts over active + allowlisted findings, sorted by id.
    pub rule_counts: Vec<(String, u64)>,
    /// Per-pass finding counts for the semantic passes (`keys`,
    /// `knobs`, `protocol`, `determinism`), sorted by pass name; empty
    /// for token-rule-only runs.
    pub passes: Vec<(String, u64)>,
}

impl LintSummary {
    /// Finding count of one semantic pass (0 when the pass didn't run).
    pub fn pass_count(&self, pass: &str) -> u64 {
        self.passes
            .iter()
            .find(|(p, _)| p == pass)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Where a run's lint summary lives: `lint.json` next to the run
/// directory (i.e. directly under `results/`), shared by all runs.
pub fn lint_path(run: &RunData) -> PathBuf {
    run.dir.parent().unwrap_or(&run.dir).join("lint.json")
}

/// Loads a lint summary; `None` when the file is missing or unreadable
/// (the report then just notes that no lint data is available).
pub fn load_lint_summary(path: &Path) -> Option<LintSummary> {
    let text = fs::read_to_string(path).ok()?;
    let v = json::parse(&text).ok()?;
    let u = |k: &str| v.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    let counts = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_obj)
            .map(|m| {
                m.iter()
                    .map(|(name, n)| (name.clone(), n.as_u64().unwrap_or(0)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let rule_counts = counts("rule_counts");
    let passes = counts("passes");
    Some(LintSummary {
        clean: v.get("clean").and_then(JsonValue::as_bool).unwrap_or(false),
        files_scanned: u("files_scanned"),
        allowlist_len: u("allowlist_len"),
        allowlisted: u("allowlisted"),
        waived: u("waived"),
        findings: v
            .get("findings")
            .and_then(JsonValue::as_arr)
            .map(|a| a.len() as u64)
            .unwrap_or(0),
        rule_counts,
        passes,
    })
}

/// Renders the markdown run report.
pub fn render_markdown(run: &RunData) -> String {
    let m = run_metrics(run);
    let rows = layer_rows(&run.snapshot);
    let mut out = String::new();
    let _ = writeln!(out, "# slm-report: {}", run.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "- directory: `{}`", run.dir.display());
    let _ = writeln!(out, "- profile: `{}`", run.profile);
    let _ = writeln!(
        out,
        "- config: `{}` ({} run{})",
        run.combined_config_hash(),
        run.config_hashes.len(),
        if run.config_hashes.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    for (label, hash) in run.run_labels.iter().zip(&run.config_hashes) {
        let _ = writeln!(out, "  - {label}: `{hash}`");
    }
    let _ = writeln!(out, "- wall time: {:.1} s", run.wall_s);
    let _ = writeln!(out);

    let _ = writeln!(out, "## Simulated time");
    let _ = writeln!(out);
    let elapsed = m.sim_elapsed_s().max(1e-12);
    let _ = writeln!(
        out,
        "| elapsed | compute | airtime | compute share |\n\
         |---:|---:|---:|---:|\n\
         | {:.2} s | {:.2} s | {:.2} s | {:.1}% |",
        m.sim_elapsed_s(),
        m.sim_compute_s,
        m.sim_airtime_s,
        100.0 * m.sim_compute_s / elapsed
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "## Per-layer profile");
    let _ = writeln!(out);
    if rows.is_empty() {
        let _ = writeln!(out, "No per-layer metrics in the snapshot (profiling runs");
        let _ = writeln!(out, "whenever telemetry is enabled during training).");
    } else {
        let total = m.layer_host_s.max(1e-12);
        let _ = writeln!(
            out,
            "| side | # | layer | fwd ms | fwd p50 µs | bwd ms | calls | share | MFLOP | params |"
        );
        let _ = writeln!(out, "|---|---:|---|---:|---:|---:|---:|---:|---:|---:|");
        for r in &rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.2} | {:.1} | {:.2} | {} | {:.1}% | {:.1} | {} |",
                r.side,
                r.idx,
                r.name,
                1e3 * r.fwd_s,
                1e6 * r.fwd_p50_s,
                1e3 * r.bwd_s,
                r.fwd_calls,
                100.0 * r.host_s() / total,
                1e-6 * r.flops,
                r.params
            );
        }
        let _ = writeln!(out);
        match m.profile_coverage() {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "Per-layer host time {:.1} ms covers {:.1}% of the trainer's \
                     model time ({:.1} ms).",
                    1e3 * m.layer_host_s,
                    100.0 * c,
                    1e3 * m.model_host_s
                );
            }
            None => {
                let _ = writeln!(out, "No `train.model.host_s` samples to compare against.");
            }
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Trace");
    let _ = writeln!(out);
    if run.spans.is_empty() {
        let _ = writeln!(
            out,
            "No spans in the journal (run with `SLM_TRACE=on` and \
             `SLM_TELEMETRY=jsonl` to record the timeline)."
        );
    } else {
        match check_spans(&run.spans) {
            Ok(stats) => {
                let _ = writeln!(
                    out,
                    "{} span(s) across {} trace(s) ({} step root(s)); latency \
                     breakdown by simulated time:",
                    stats.spans, stats.traces, stats.roots
                );
                let _ = writeln!(out);
                let _ = writeln!(out, "| span | count | total sim ms | mean µs | max µs |");
                let _ = writeln!(out, "|---|---:|---:|---:|---:|");
                for r in latency_breakdown(&run.spans) {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {:.3} | {:.1} | {} |",
                        r.name,
                        r.count,
                        r.total_us as f64 / 1e3,
                        r.mean_us(),
                        r.max_us
                    );
                }
                let _ = writeln!(out);
                let _ = writeln!(
                    out,
                    "Export a Perfetto timeline with `slm-trace --out trace.json \
                     {}`.",
                    run.dir.join(format!("{}.jsonl", run.name)).display()
                );
            }
            Err(errors) => {
                let _ = writeln!(
                    out,
                    "**Malformed span set** — {} error(s) from the well-formedness \
                     check:",
                    errors.len()
                );
                for e in errors.iter().take(10) {
                    let _ = writeln!(out, "- {e}");
                }
            }
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Health");
    let _ = writeln!(out);
    if run.health_events.is_empty() {
        let _ = writeln!(out, "No health events.");
    } else {
        for e in &run.health_events {
            let _ = writeln!(
                out,
                "- **{}** (metric `{}`, action {}): {}",
                e.kind, e.metric, e.action, e.detail
            );
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Static analysis");
    let _ = writeln!(out);
    match load_lint_summary(&lint_path(run)) {
        Some(l) => {
            let _ = writeln!(
                out,
                "- status: {} ({} active finding{})",
                if l.clean { "**clean**" } else { "**FINDINGS**" },
                l.findings,
                if l.findings == 1 { "" } else { "s" }
            );
            let _ = writeln!(
                out,
                "- {} files scanned; allowlist size **{}** (burn-down: must only \
                 shrink), {} allowlisted, {} waived",
                l.files_scanned, l.allowlist_len, l.allowlisted, l.waived
            );
            if !l.passes.is_empty() {
                let passes = l
                    .passes
                    .iter()
                    .map(|(p, n)| format!("{p}:{n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "- semantic passes (findings): {passes}");
            }
            if !l.rule_counts.is_empty() {
                let _ = writeln!(out);
                let _ = writeln!(out, "| rule | findings (incl. allowlisted) |");
                let _ = writeln!(out, "|---|---:|");
                for (rule, n) in &l.rule_counts {
                    let _ = writeln!(out, "| `{rule}` | {n} |");
                }
            }
        }
        None => {
            let _ = writeln!(
                out,
                "No lint summary (`results/lint.json` missing — the `lint` stage \
                 of `scripts/verify.sh` writes it)."
            );
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Metrics");
    let _ = writeln!(out);
    match m.val_rmse_db {
        Some(v) => {
            let _ = writeln!(out, "- final validation RMSE: **{v:.2} dB**");
        }
        None => {
            let _ = writeln!(out, "- final validation RMSE: (not recorded)");
        }
    }
    let _ = writeln!(
        out,
        "- steps: {} applied, {} voided",
        m.steps_applied, m.steps_voided
    );
    if let Some(p50) = m.step_p50_s {
        let _ = writeln!(out, "- per-step host time p50: {:.2} ms", 1e3 * p50);
    }
    let _ = writeln!(
        out,
        "- non-finite observations: {} ({} loss / {} grad)",
        m.nonfinite,
        run.snapshot.counter("train.nonfinite.loss"),
        run.snapshot.counter("train.nonfinite.grad")
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "## Time-series");
    let _ = writeln!(out);
    match run.series.as_ref().filter(|s| !s.is_empty()) {
        Some(store) => {
            let _ = writeln!(
                out,
                "| metric | samples | dropped | min | max | last | trend |"
            );
            let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---|");
            for name in store.names() {
                let Some(series) = store.get(name) else {
                    continue;
                };
                let values: Vec<f32> = series.iter().map(|(_, v)| v as f32).collect();
                let stride = values.len().div_ceil(40).max(1);
                let trend: Vec<f32> = values.iter().copied().step_by(stride).collect();
                let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.4}"));
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | `{}` |",
                    name,
                    series.len(),
                    series.dropped(),
                    fmt(series.min_value()),
                    fmt(series.max_value()),
                    fmt(series.last().map(|(_, v)| v)),
                    crate::sparkline(&trend),
                );
            }
        }
        None => {
            let _ = writeln!(
                out,
                "No sampled series (`series.jsonl` missing — runs with telemetry \
                 enabled sample every `SLM_SAMPLE_EVERY` steps on the simulated \
                 clock)."
            );
        }
    }
    out
}

/// Last sampled `train.loss` value; NaN when the run carries no series
/// (pre-series runs, telemetry off) so the regression gate knows to
/// skip it.
pub fn final_loss(run: &RunData) -> f64 {
    run.series
        .as_ref()
        .and_then(|s| s.get("train.loss"))
        .and_then(|s| s.last())
        .map_or(f64::NAN, |(_, v)| v)
}

/// One `BENCH_<exp>.json` trajectory entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Unix seconds when the entry was appended (0 when unknown).
    pub timestamp_s: u64,
    /// Profile name.
    pub profile: String,
    /// [`RunData::combined_config_hash`].
    pub config_hash: String,
    /// Final validation RMSE, dB.
    pub val_rmse_db: f64,
    /// Simulated elapsed seconds.
    pub sim_elapsed_s: f64,
    /// Applied SGD steps.
    pub steps_applied: u64,
    /// Host wall seconds for the whole experiment.
    pub wall_s: f64,
    /// Trainer model host seconds.
    pub model_host_s: f64,
    /// Per-layer profile host seconds.
    pub layer_host_s: f64,
    /// Health events recorded during the run.
    pub health_events: u64,
    /// Active lint findings at report time (0 for pre-lint trajectories).
    pub lint_findings: u64,
    /// Lint allowlist size — growth across entries means the burn-down
    /// ratchet slipped.
    pub lint_allowlist: u64,
    /// Inline lint waivers in effect.
    pub lint_waived: u64,
    /// `--keys` pass findings (telemetry key-namespace drift).
    pub lint_keys: u64,
    /// `--knobs` pass findings (SLM_* env-knob table drift).
    pub lint_knobs: u64,
    /// `--protocol` pass findings (MsgType coverage + model check).
    pub lint_protocol: u64,
    /// `--determinism` pass findings (kernel accumulator heuristics).
    pub lint_determinism: u64,
    /// Last sampled `train.loss` value (NaN when the run carries no
    /// series; serialized as JSON `null` and never gated then).
    pub final_loss: f64,
}

impl BenchEntry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .u64("timestamp_s", self.timestamp_s)
            .str("profile", &self.profile)
            .str("config_hash", &self.config_hash)
            .f64("val_rmse_db", self.val_rmse_db)
            .f64("sim_elapsed_s", self.sim_elapsed_s)
            .u64("steps_applied", self.steps_applied)
            .f64("wall_s", self.wall_s)
            .f64("model_host_s", self.model_host_s)
            .f64("layer_host_s", self.layer_host_s)
            .u64("health_events", self.health_events)
            .u64("lint_findings", self.lint_findings)
            .u64("lint_allowlist", self.lint_allowlist)
            .u64("lint_waived", self.lint_waived)
            .u64("lint_keys", self.lint_keys)
            .u64("lint_knobs", self.lint_knobs)
            .u64("lint_protocol", self.lint_protocol)
            .u64("lint_determinism", self.lint_determinism)
            .f64("final_loss", self.final_loss)
            .finish()
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let f = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("entry missing numeric field {k:?}"))
        };
        let u = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("entry missing integer field {k:?}"))
        };
        let s = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing string field {k:?}"))
        };
        Ok(BenchEntry {
            timestamp_s: u("timestamp_s")?,
            profile: s("profile")?,
            config_hash: s("config_hash")?,
            val_rmse_db: f("val_rmse_db")?,
            sim_elapsed_s: f("sim_elapsed_s")?,
            steps_applied: u("steps_applied")?,
            wall_s: f("wall_s")?,
            model_host_s: f("model_host_s")?,
            layer_host_s: f("layer_host_s")?,
            health_events: u("health_events")?,
            // Lint fields arrived later; default 0 keeps pre-lint
            // trajectory files loadable.
            lint_findings: u("lint_findings").unwrap_or(0),
            lint_allowlist: u("lint_allowlist").unwrap_or(0),
            lint_waived: u("lint_waived").unwrap_or(0),
            // Per-pass semantic counts arrived later still.
            lint_keys: u("lint_keys").unwrap_or(0),
            lint_knobs: u("lint_knobs").unwrap_or(0),
            lint_protocol: u("lint_protocol").unwrap_or(0),
            lint_determinism: u("lint_determinism").unwrap_or(0),
            // Likewise the series field: missing or null means "no
            // series recorded", which NaN encodes.
            final_loss: v
                .get("final_loss")
                .and_then(JsonValue::as_f64)
                .unwrap_or(f64::NAN),
        })
    }
}

/// Builds the trajectory entry for a loaded run.
pub fn entry_from_run(run: &RunData, timestamp_s: u64) -> BenchEntry {
    let m = run_metrics(run);
    let lint = load_lint_summary(&lint_path(run)).unwrap_or_default();
    BenchEntry {
        timestamp_s,
        profile: run.profile.clone(),
        config_hash: run.combined_config_hash(),
        val_rmse_db: m.val_rmse_db.unwrap_or(f64::NAN),
        sim_elapsed_s: m.sim_elapsed_s(),
        steps_applied: m.steps_applied,
        wall_s: run.wall_s,
        model_host_s: m.model_host_s,
        layer_host_s: m.layer_host_s,
        health_events: run.health_events.len() as u64,
        lint_findings: lint.findings,
        lint_allowlist: lint.allowlist_len,
        lint_waived: lint.waived,
        lint_keys: lint.pass_count("keys"),
        lint_knobs: lint.pass_count("knobs"),
        lint_protocol: lint.pass_count("protocol"),
        lint_determinism: lint.pass_count("determinism"),
        final_loss: final_loss(run),
    }
}

/// Where a run's trajectory file lives: `BENCH_<exp>.json` next to the
/// run directory (i.e. directly under `results/`).
pub fn bench_path(run: &RunData) -> PathBuf {
    let parent = run.dir.parent().unwrap_or(&run.dir);
    parent.join(format!("BENCH_{}.json", run.name))
}

/// Loads a trajectory file; a missing file is an empty trajectory.
pub fn load_trajectory(path: &Path) -> Result<Vec<BenchEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = v
        .get("entries")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{}: missing \"entries\" array", path.display()))?;
    entries
        .iter()
        .map(BenchEntry::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Appends `entry` to the trajectory file (rewriting it whole — the
/// files stay small) and returns the new entry count.
pub fn append_trajectory(
    path: &Path,
    experiment: &str,
    entry: &BenchEntry,
) -> Result<usize, String> {
    let mut entries = load_trajectory(path)?;
    entries.push(entry.clone());
    let mut arr = JsonArray::new();
    for e in &entries {
        arr.push_raw(&e.to_json());
    }
    let body = JsonObject::new()
        .str("experiment", experiment)
        .raw("entries", &arr.finish())
        .finish();
    fs::write(path, body + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(entries.len())
}

/// Regression-gate tolerances (relative).
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Allowed relative increase of the validation RMSE.
    pub tol_rmse_rel: f64,
    /// Allowed relative increase of the simulated elapsed time (the sim
    /// clock is deterministic given the config, so drift means the
    /// compute/airtime model changed).
    pub tol_time_rel: f64,
    /// Allowed relative increase of the final sampled training loss
    /// (only gated when both entries carry a series).
    pub tol_loss_rel: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            tol_rmse_rel: 0.30,
            tol_time_rel: 0.25,
            tol_loss_rel: 0.30,
        }
    }
}

/// [`check`]'s result.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// No prior entry with the same profile + config hash — nothing to
    /// compare against (treated as a pass).
    NoBaseline,
    /// Within tolerance of the baseline.
    Pass {
        /// What the entry was compared against.
        baseline: Box<BenchEntry>,
    },
    /// Regression(s) found.
    Fail {
        /// What the entry was compared against.
        baseline: Box<BenchEntry>,
        /// One line per violated tolerance.
        failures: Vec<String>,
    },
}

impl CheckOutcome {
    /// `true` unless a regression was found.
    pub fn passed(&self) -> bool {
        !matches!(self, CheckOutcome::Fail { .. })
    }
}

/// Compares `entry` against the most recent `history` entry with the
/// same profile and config hash. Gated: validation RMSE, simulated
/// elapsed time, and any health events during the fresh run. Host wall
/// times are reported but never gated (they are machine-dependent).
pub fn check(entry: &BenchEntry, history: &[BenchEntry], cfg: &CheckConfig) -> CheckOutcome {
    let mut failures = Vec::new();
    if entry.health_events > 0 {
        failures.push(format!(
            "{} health event(s) during the run",
            entry.health_events
        ));
    }
    let baseline = history
        .iter()
        .rev()
        .find(|e| e.profile == entry.profile && e.config_hash == entry.config_hash);
    let Some(base) = baseline else {
        return if failures.is_empty() {
            CheckOutcome::NoBaseline
        } else {
            // Health failures stand even without a baseline.
            CheckOutcome::Fail {
                baseline: Box::new(entry.clone()),
                failures,
            }
        };
    };
    if !entry.val_rmse_db.is_finite() {
        failures.push("validation RMSE is non-finite".to_string());
    } else if entry.val_rmse_db > base.val_rmse_db * (1.0 + cfg.tol_rmse_rel) + 0.05 {
        failures.push(format!(
            "val RMSE regressed: {:.2} dB vs baseline {:.2} dB (tol +{:.0}%)",
            entry.val_rmse_db,
            base.val_rmse_db,
            100.0 * cfg.tol_rmse_rel
        ));
    }
    if entry.sim_elapsed_s > base.sim_elapsed_s * (1.0 + cfg.tol_time_rel) {
        failures.push(format!(
            "simulated time regressed: {:.2} s vs baseline {:.2} s (tol +{:.0}%)",
            entry.sim_elapsed_s,
            base.sim_elapsed_s,
            100.0 * cfg.tol_time_rel
        ));
    }
    // Series final values are gateable only when both runs sampled one
    // (NaN marks "no series"); pre-series baselines never fail this.
    if entry.final_loss.is_finite()
        && base.final_loss.is_finite()
        && entry.final_loss > base.final_loss * (1.0 + cfg.tol_loss_rel) + 1e-6
    {
        failures.push(format!(
            "final training loss regressed: {:.4} vs baseline {:.4} (tol +{:.0}%)",
            entry.final_loss,
            base.final_loss,
            100.0 * cfg.tol_loss_rel
        ));
    }
    let baseline = Box::new(base.clone());
    if failures.is_empty() {
        CheckOutcome::Pass { baseline }
    } else {
        CheckOutcome::Fail { baseline, failures }
    }
}

// ---------------------------------------------------------------------
// Kernel micro-benchmark trajectory (`BENCH_kernels.json`)
// ---------------------------------------------------------------------

/// One `BENCH_kernels.json` entry: a single kernel workload measured at
/// three tiers — the pre-backend scalar reference loop, the tiled
/// backend on one thread, and the tiled backend on the pooled thread
/// count. Written by the `kernels` bin, rendered/gated by
/// `slm-report --kernels`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelsEntry {
    /// Unix seconds of the batch this entry belongs to (0 when unknown);
    /// entries appended together share one timestamp.
    pub timestamp_s: u64,
    /// Kernel family (`matmul`, `matmul_at_b`, `conv2d_fwd`, ...).
    pub kernel: String,
    /// Workload shape label, e.g. `256x16x64`.
    pub shape: String,
    /// Pooled participant count measured (the host may cap the useful
    /// parallelism below `SLM_THREADS`).
    pub threads: u64,
    /// Throughput of the scalar pre-backend reference, GFLOP/s.
    pub ref_gflops: f64,
    /// Throughput of the backend at one thread, GFLOP/s.
    pub serial_gflops: f64,
    /// Throughput of the backend at `threads` participants, GFLOP/s.
    pub pooled_gflops: f64,
    /// Throughput of the SIMD backend at one thread, GFLOP/s. NaN for
    /// entries recorded before the SIMD tier existed (serialized as
    /// JSON `null` then, like `final_loss`).
    pub simd_gflops: f64,
    /// Whether every measured tier's output was bitwise identical to
    /// the serial output — the backend's determinism contract, gated by
    /// [`check_kernels`].
    pub bitwise_equal: bool,
}

impl KernelsEntry {
    /// serial / reference: what cache blocking alone buys.
    pub fn tile_speedup(&self) -> f64 {
        self.serial_gflops / self.ref_gflops
    }

    /// pooled / serial: what the worker pool buys on this host.
    pub fn pool_speedup(&self) -> f64 {
        self.pooled_gflops / self.serial_gflops
    }

    /// pooled / reference: the end-to-end backend speedup.
    pub fn total_speedup(&self) -> f64 {
        self.pooled_gflops / self.ref_gflops
    }

    /// simd / serial: what explicit vectorization buys over the blocked
    /// scalar kernels at one thread (NaN for pre-SIMD entries).
    pub fn simd_speedup(&self) -> f64 {
        self.simd_gflops / self.serial_gflops
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .u64("timestamp_s", self.timestamp_s)
            .str("kernel", &self.kernel)
            .str("shape", &self.shape)
            .u64("threads", self.threads)
            .f64("ref_gflops", self.ref_gflops)
            .f64("serial_gflops", self.serial_gflops)
            .f64("pooled_gflops", self.pooled_gflops)
            .f64("simd_gflops", self.simd_gflops)
            .bool("bitwise_equal", self.bitwise_equal)
            .finish()
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let f = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("kernels entry missing numeric field {k:?}"))
        };
        let u = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("kernels entry missing integer field {k:?}"))
        };
        let s = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("kernels entry missing string field {k:?}"))
        };
        Ok(KernelsEntry {
            timestamp_s: u("timestamp_s")?,
            kernel: s("kernel")?,
            shape: s("shape")?,
            threads: u("threads")?,
            ref_gflops: f("ref_gflops")?,
            serial_gflops: f("serial_gflops")?,
            pooled_gflops: f("pooled_gflops")?,
            // The SIMD tier arrived later; NaN marks pre-SIMD entries.
            simd_gflops: v
                .get("simd_gflops")
                .and_then(JsonValue::as_f64)
                .unwrap_or(f64::NAN),
            bitwise_equal: v
                .get("bitwise_equal")
                .and_then(JsonValue::as_bool)
                .ok_or("kernels entry missing boolean field \"bitwise_equal\"")?,
        })
    }
}

/// Where the kernel trajectory lives: `BENCH_kernels.json` directly
/// under `results/`.
pub fn kernels_bench_path(results_dir: &Path) -> PathBuf {
    results_dir.join("BENCH_kernels.json")
}

/// Loads the kernel trajectory; a missing file is an empty trajectory.
pub fn load_kernels_trajectory(path: &Path) -> Result<Vec<KernelsEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = v
        .get("entries")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{}: missing \"entries\" array", path.display()))?;
    entries
        .iter()
        .map(KernelsEntry::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Appends a batch of entries to the kernel trajectory (rewriting the
/// file whole, like [`append_trajectory`]) and returns the new total.
pub fn append_kernels_trajectory(path: &Path, batch: &[KernelsEntry]) -> Result<usize, String> {
    let mut entries = load_kernels_trajectory(path)?;
    entries.extend(batch.iter().cloned());
    let mut arr = JsonArray::new();
    for e in &entries {
        arr.push_raw(&e.to_json());
    }
    let body = JsonObject::new()
        .str("experiment", "kernels")
        .raw("entries", &arr.finish())
        .finish();
    fs::write(path, body + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(entries.len())
}

/// The most recent batch: the suffix of entries sharing the last entry's
/// timestamp (batches are appended together with one timestamp).
pub fn latest_kernels_batch(entries: &[KernelsEntry]) -> &[KernelsEntry] {
    let Some(last) = entries.last() else {
        return entries;
    };
    let start = entries
        .iter()
        .rposition(|e| e.timestamp_s != last.timestamp_s)
        .map(|i| i + 1)
        .unwrap_or(0);
    &entries[start..]
}

/// Renders a kernel batch as a markdown table.
pub fn render_kernels(batch: &[KernelsEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# slm-report: compute-backend kernels");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| kernel | shape | threads | ref GF/s | serial GF/s | pooled GF/s \
         | simd GF/s | tile× | pool× | simd× | total× | bitwise |"
    );
    let _ = writeln!(
        out,
        "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|"
    );
    // Pre-SIMD entries carry NaN in the simd column; render a dash.
    let simd_cell = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.2}")
        }
    };
    for e in batch {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {} | {:.2} | {:.2} | {} | {:.2} | {} |",
            e.kernel,
            e.shape,
            e.threads,
            e.ref_gflops,
            e.serial_gflops,
            e.pooled_gflops,
            simd_cell(e.simd_gflops),
            e.tile_speedup(),
            e.pool_speedup(),
            simd_cell(e.simd_speedup()),
            e.total_speedup(),
            if e.bitwise_equal { "ok" } else { "MISMATCH" }
        );
    }
    out
}

/// Correctness gate over a kernel batch. Throughputs are recorded but —
/// like host wall times elsewhere — never gated (machine-dependent);
/// what *is* gated is the determinism contract and that every tier
/// actually ran: an empty batch, a bitwise mismatch, or a non-positive /
/// non-finite throughput fails.
pub fn check_kernels(batch: &[KernelsEntry]) -> Vec<String> {
    let mut failures = Vec::new();
    if batch.is_empty() {
        failures.push("no kernel entries recorded".to_string());
    }
    for e in batch {
        let label = format!("{} {}", e.kernel, e.shape);
        if !e.bitwise_equal {
            failures.push(format!(
                "{label}: pooled output differs bitwise from the serial reference"
            ));
        }
        for (tier, v) in [
            ("ref", e.ref_gflops),
            ("serial", e.serial_gflops),
            ("pooled", e.pooled_gflops),
        ] {
            if !v.is_finite() || v <= 0.0 {
                failures.push(format!("{label}: {tier} throughput is {v} GFLOP/s"));
            }
        }
        // The SIMD tier arrived later: NaN marks a pre-SIMD entry and is
        // not gated, but a measured tier must have actually run.
        if !e.simd_gflops.is_nan() && (!e.simd_gflops.is_finite() || e.simd_gflops <= 0.0) {
            failures.push(format!(
                "{label}: simd throughput is {} GFLOP/s",
                e.simd_gflops
            ));
        }
    }
    failures
}

// ---------------------------------------------------------------------
// Chunked-store codec trajectory (`BENCH_store.json`)
// ---------------------------------------------------------------------

/// One `BENCH_store.json` entry: a single (workload, codec) pairing
/// measured by the `store` bin — encode/decode throughput, compression
/// ratio and the lossless round-trip verdict. Written by the `store`
/// bin, rendered/gated by `slm-report --store`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Unix seconds of the batch this entry belongs to (0 when unknown);
    /// entries appended together share one timestamp.
    pub timestamp_s: u64,
    /// What was encoded (`frames` = smoke-scene depth maps,
    /// `activations` = quantized cut-layer values, ...).
    pub workload: String,
    /// Codec spelling ([`sl_store::Codec::name`]): `raw`, `bitpack<R>`,
    /// `delta+rle`.
    pub codec: String,
    /// Pooled participant count during the measurement.
    pub threads: u64,
    /// Raw payload size, MB (1e6 bytes).
    pub raw_mb: f64,
    /// Encode throughput over the raw size, MB/s.
    pub encode_mbps: f64,
    /// Decode throughput over the raw size, MB/s.
    pub decode_mbps: f64,
    /// raw bytes / encoded bytes (> 1 means the codec compressed).
    pub ratio: f64,
    /// Whether the decoded values were bitwise identical to the input —
    /// the codec's determinism/lossless contract, gated by
    /// [`check_store`].
    pub lossless: bool,
}

impl StoreEntry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .u64("timestamp_s", self.timestamp_s)
            .str("workload", &self.workload)
            .str("codec", &self.codec)
            .u64("threads", self.threads)
            .f64("raw_mb", self.raw_mb)
            .f64("encode_mbps", self.encode_mbps)
            .f64("decode_mbps", self.decode_mbps)
            .f64("ratio", self.ratio)
            .bool("lossless", self.lossless)
            .finish()
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let f = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("store entry missing numeric field {k:?}"))
        };
        let u = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("store entry missing integer field {k:?}"))
        };
        let s = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("store entry missing string field {k:?}"))
        };
        Ok(StoreEntry {
            timestamp_s: u("timestamp_s")?,
            workload: s("workload")?,
            codec: s("codec")?,
            threads: u("threads")?,
            raw_mb: f("raw_mb")?,
            encode_mbps: f("encode_mbps")?,
            decode_mbps: f("decode_mbps")?,
            ratio: f("ratio")?,
            lossless: v
                .get("lossless")
                .and_then(JsonValue::as_bool)
                .ok_or("store entry missing boolean field \"lossless\"")?,
        })
    }
}

/// Where the store trajectory lives: `BENCH_store.json` directly under
/// `results/`.
pub fn store_bench_path(results_dir: &Path) -> PathBuf {
    results_dir.join("BENCH_store.json")
}

/// Loads the store trajectory; a missing file is an empty trajectory.
pub fn load_store_trajectory(path: &Path) -> Result<Vec<StoreEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = v
        .get("entries")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{}: missing \"entries\" array", path.display()))?;
    entries
        .iter()
        .map(StoreEntry::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Appends a batch of entries to the store trajectory (rewriting the
/// file whole, like [`append_trajectory`]) and returns the new total.
pub fn append_store_trajectory(path: &Path, batch: &[StoreEntry]) -> Result<usize, String> {
    let mut entries = load_store_trajectory(path)?;
    entries.extend(batch.iter().cloned());
    let mut arr = JsonArray::new();
    for e in &entries {
        arr.push_raw(&e.to_json());
    }
    let body = JsonObject::new()
        .str("experiment", "store")
        .raw("entries", &arr.finish())
        .finish();
    fs::write(path, body + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(entries.len())
}

/// The most recent batch: the suffix of entries sharing the last entry's
/// timestamp (batches are appended together with one timestamp).
pub fn latest_store_batch(entries: &[StoreEntry]) -> &[StoreEntry] {
    let Some(last) = entries.last() else {
        return entries;
    };
    let start = entries
        .iter()
        .rposition(|e| e.timestamp_s != last.timestamp_s)
        .map(|i| i + 1)
        .unwrap_or(0);
    &entries[start..]
}

/// Renders a store batch as a markdown table.
pub fn render_store(batch: &[StoreEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# slm-report: chunked-store codecs");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| workload | codec | threads | raw MB | enc MB/s | dec MB/s | ratio | lossless |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---|");
    for e in batch {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {:.1} | {:.1} | {:.2} | {} |",
            e.workload,
            e.codec,
            e.threads,
            e.raw_mb,
            e.encode_mbps,
            e.decode_mbps,
            e.ratio,
            if e.lossless { "ok" } else { "LOSSY" }
        );
    }
    out
}

/// Correctness gate over a store batch. Throughputs are recorded but —
/// as everywhere else — never gated (machine-dependent). What *is*
/// gated: every round-trip was bitwise lossless, every measured rate is
/// finite and positive, and `delta+rle` actually compresses the depth
/// frames better than `raw` stores them (the codec's reason to exist —
/// see DESIGN.md §14).
pub fn check_store(batch: &[StoreEntry]) -> Vec<String> {
    let mut failures = Vec::new();
    if batch.is_empty() {
        failures.push("no store entries recorded".to_string());
    }
    for e in batch {
        let label = format!("{} {}", e.workload, e.codec);
        if !e.lossless {
            failures.push(format!("{label}: round-trip was not bitwise lossless"));
        }
        for (what, v) in [
            ("encode", e.encode_mbps),
            ("decode", e.decode_mbps),
            ("ratio", e.ratio),
        ] {
            if !v.is_finite() || v <= 0.0 {
                failures.push(format!("{label}: {what} is {v}"));
            }
        }
    }
    let frames_ratio = |codec: &str| {
        batch
            .iter()
            .find(|e| e.workload == "frames" && e.codec == codec)
            .map(|e| e.ratio)
    };
    if let (Some(delta), Some(raw)) = (frames_ratio("delta+rle"), frames_ratio("raw")) {
        if delta <= raw {
            failures.push(format!(
                "frames: delta+rle ratio {delta:.3} does not beat raw ratio {raw:.3}"
            ));
        }
    }
    failures
}

/// Renders a side-by-side diff of two runs; the `bool` is `true` when
/// run `b` regresses beyond `cfg` relative to run `a`.
pub fn render_diff(a: &RunData, b: &RunData, cfg: &CheckConfig) -> (String, bool) {
    let ma = run_metrics(a);
    let mb = run_metrics(b);
    let mut out = String::new();
    let _ = writeln!(out, "# slm-report diff: {} vs {}", a.name, b.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "| metric | {} | {} | delta |", a.name, b.name);
    let _ = writeln!(out, "|---|---:|---:|---:|");
    let mut row = |name: &str, va: f64, vb: f64, unit: &str| {
        let delta = vb - va;
        let rel = if va.abs() > 1e-12 {
            format!(" ({:+.1}%)", 100.0 * delta / va)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "| {name} | {va:.3} {unit} | {vb:.3} {unit} | {delta:+.3}{rel} |"
        );
    };
    let ra = ma.val_rmse_db.unwrap_or(f64::NAN);
    let rb = mb.val_rmse_db.unwrap_or(f64::NAN);
    row("val RMSE", ra, rb, "dB");
    row("sim elapsed", ma.sim_elapsed_s(), mb.sim_elapsed_s(), "s");
    row("sim compute", ma.sim_compute_s, mb.sim_compute_s, "s");
    row("sim airtime", ma.sim_airtime_s, mb.sim_airtime_s, "s");
    row(
        "steps applied",
        ma.steps_applied as f64,
        mb.steps_applied as f64,
        "",
    );
    row("model host", ma.model_host_s, mb.model_host_s, "s");
    row("wall", a.wall_s, b.wall_s, "s");
    let regressed = (rb.is_finite() && ra.is_finite() && rb > ra * (1.0 + cfg.tol_rmse_rel) + 0.05)
        || mb.sim_elapsed_s() > ma.sim_elapsed_s() * (1.0 + cfg.tol_time_rel);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Regression (tol rmse +{:.0}%, time +{:.0}%): {}",
        100.0 * cfg.tol_rmse_rel,
        100.0 * cfg.tol_time_rel,
        if regressed { "YES" } else { "no" }
    );
    (out, regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(profile: &str, hash: &str, rmse: f64, sim: f64) -> BenchEntry {
        BenchEntry {
            timestamp_s: 1,
            profile: profile.to_string(),
            config_hash: hash.to_string(),
            val_rmse_db: rmse,
            sim_elapsed_s: sim,
            steps_applied: 100,
            wall_s: 2.0,
            model_host_s: 1.0,
            layer_host_s: 0.98,
            health_events: 0,
            lint_findings: 0,
            lint_allowlist: 0,
            lint_waived: 0,
            lint_keys: 0,
            lint_knobs: 0,
            lint_protocol: 0,
            lint_determinism: 0,
            final_loss: 0.5,
        }
    }

    fn kentry(kernel: &str, ts: u64, bitwise: bool) -> KernelsEntry {
        KernelsEntry {
            timestamp_s: ts,
            kernel: kernel.to_string(),
            shape: "8x8x8".to_string(),
            threads: 4,
            ref_gflops: 1.0,
            serial_gflops: 2.0,
            pooled_gflops: 4.0,
            simd_gflops: 6.0,
            bitwise_equal: bitwise,
        }
    }

    #[test]
    fn kernels_entry_round_trips_and_derives_speedups() {
        let e = kentry("matmul", 7, true);
        let back = KernelsEntry::from_json(&json::parse(&e.to_json()).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.tile_speedup(), 2.0);
        assert_eq!(back.pool_speedup(), 2.0);
        assert_eq!(back.total_speedup(), 4.0);
        assert_eq!(back.simd_speedup(), 3.0);
    }

    #[test]
    fn pre_simd_kernels_entries_load_as_nan_and_are_not_gated() {
        let e = kentry("matmul", 7, true);
        let v = json::parse(&e.to_json()).unwrap();
        let mut obj = v.as_obj().unwrap().clone();
        obj.remove("simd_gflops");
        let old = KernelsEntry::from_json(&JsonValue::Obj(obj)).unwrap();
        assert!(old.simd_gflops.is_nan());
        assert!(check_kernels(std::slice::from_ref(&old)).is_empty());
        // NaN serializes as null and reloads as NaN.
        assert!(old.to_json().contains("\"simd_gflops\":null"));
        // A measured-but-dead simd tier still fails the gate.
        let mut dead = kentry("matmul", 7, true);
        dead.simd_gflops = 0.0;
        let failures = check_kernels(&[dead]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("simd throughput"), "{failures:?}");
    }

    #[test]
    fn kernels_trajectory_appends_and_batches() {
        let dir = std::env::temp_dir().join(format!("slm-kern-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = kernels_bench_path(&dir);
        let _ = fs::remove_file(&path);
        assert!(load_kernels_trajectory(&path).unwrap().is_empty());
        append_kernels_trajectory(&path, &[kentry("matmul", 1, true)]).unwrap();
        let n = append_kernels_trajectory(
            &path,
            &[kentry("matmul", 2, true), kentry("conv2d_fwd", 2, true)],
        )
        .unwrap();
        assert_eq!(n, 3);
        let all = load_kernels_trajectory(&path).unwrap();
        assert_eq!(all.len(), 3);
        let batch = latest_kernels_batch(&all);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| e.timestamp_s == 2));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn kernels_check_gates_determinism_not_speed() {
        assert_eq!(check_kernels(&[]).len(), 1);
        // Slow is fine: pooled below serial is reported, not gated.
        let mut slow = kentry("matmul", 1, true);
        slow.pooled_gflops = 0.5;
        assert!(check_kernels(&[slow]).is_empty());
        // A bitwise mismatch or dead tier is not fine.
        let bad = kentry("matmul", 1, false);
        let mut dead = kentry("conv2d_fwd", 1, true);
        dead.ref_gflops = 0.0;
        let failures = check_kernels(&[bad, dead]);
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("bitwise"));
        assert!(failures[1].contains("ref throughput"));
    }

    fn sentry(workload: &str, codec: &str, ts: u64, ratio: f64) -> StoreEntry {
        StoreEntry {
            timestamp_s: ts,
            workload: workload.to_string(),
            codec: codec.to_string(),
            threads: 4,
            raw_mb: 5.12,
            encode_mbps: 800.0,
            decode_mbps: 1200.0,
            ratio,
            lossless: true,
        }
    }

    #[test]
    fn store_entry_round_trips_and_batches() {
        let e = sentry("frames", "delta+rle", 7, 3.5);
        let back = StoreEntry::from_json(&json::parse(&e.to_json()).unwrap()).unwrap();
        assert_eq!(back, e);

        let dir = std::env::temp_dir().join(format!("slm-store-traj-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = store_bench_path(&dir);
        let _ = fs::remove_file(&path);
        assert!(load_store_trajectory(&path).unwrap().is_empty());
        append_store_trajectory(&path, &[sentry("frames", "raw", 1, 1.0)]).unwrap();
        let n = append_store_trajectory(
            &path,
            &[
                sentry("frames", "raw", 2, 1.0),
                sentry("frames", "delta+rle", 2, 3.0),
            ],
        )
        .unwrap();
        assert_eq!(n, 3);
        let all = load_store_trajectory(&path).unwrap();
        let batch = latest_store_batch(&all);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| e.timestamp_s == 2));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn store_check_gates_losslessness_and_compression_win() {
        assert_eq!(check_store(&[]).len(), 1);
        // A healthy batch passes; speed is reported, never gated.
        let good = [
            sentry("frames", "raw", 1, 1.0),
            sentry("frames", "delta+rle", 1, 3.0),
            sentry("activations", "bitpack8", 1, 4.0),
        ];
        assert!(check_store(&good).is_empty());
        // A lossy round-trip fails.
        let mut lossy = sentry("frames", "raw", 1, 1.0);
        lossy.lossless = false;
        let failures = check_store(std::slice::from_ref(&lossy));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("lossless"));
        // A dead rate fails.
        let mut dead = sentry("frames", "raw", 1, 1.0);
        dead.decode_mbps = 0.0;
        assert!(check_store(&[dead])[0].contains("decode"));
        // delta+rle not beating raw on depth frames fails.
        let tie = [
            sentry("frames", "raw", 1, 1.0),
            sentry("frames", "delta+rle", 1, 1.0),
        ];
        let failures = check_store(&tie);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("does not beat"), "{failures:?}");
        // Rendering marks losslessness.
        let md = render_store(&good);
        assert!(md.contains("| frames | delta+rle |"));
        assert!(md.contains(" ok |"));
    }

    #[test]
    fn bench_entry_round_trips_lint_fields() {
        let mut e = entry("smoke", "abc", 3.0, 10.0);
        e.lint_findings = 1;
        e.lint_allowlist = 65;
        e.lint_waived = 9;
        let v = json::parse(&e.to_json()).unwrap();
        let back = BenchEntry::from_json(&v).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn bench_entry_lint_fields_default_for_pre_lint_trajectories() {
        // Entries written before the lint stage existed have no lint_*
        // keys; they must still load, with zeros.
        let old = entry("smoke", "abc", 3.0, 10.0);
        let v = json::parse(&old.to_json()).unwrap();
        let mut obj = v.as_obj().unwrap().clone();
        obj.remove("lint_findings");
        obj.remove("lint_allowlist");
        obj.remove("lint_waived");
        let stripped = JsonValue::Obj(obj);
        let back = BenchEntry::from_json(&stripped).unwrap();
        assert_eq!(back.lint_allowlist, 0);
        assert_eq!(back.lint_findings, 0);
        assert_eq!(back.lint_waived, 0);
        assert_eq!(back.profile, "smoke");
    }

    #[test]
    fn bench_entry_final_loss_nan_serializes_as_null_and_reloads() {
        let mut e = entry("smoke", "abc", 3.0, 10.0);
        e.final_loss = f64::NAN;
        let text = e.to_json();
        assert!(text.contains("\"final_loss\":null"), "{text}");
        let back = BenchEntry::from_json(&json::parse(&text).unwrap()).unwrap();
        assert!(back.final_loss.is_nan());
        // Pre-series entries (no final_loss key at all) also load as NaN.
        let v = json::parse(&entry("smoke", "abc", 3.0, 10.0).to_json()).unwrap();
        let mut obj = v.as_obj().unwrap().clone();
        obj.remove("final_loss");
        let old = BenchEntry::from_json(&JsonValue::Obj(obj)).unwrap();
        assert!(old.final_loss.is_nan());
    }

    #[test]
    fn check_gates_final_loss_only_when_both_runs_sampled_one() {
        let cfg = CheckConfig::default();
        let base = entry("smoke", "abc", 4.0, 10.0); // final_loss 0.5
        let hist = vec![base];
        // 2x the baseline's final loss fails the gate.
        let mut worse = entry("smoke", "abc", 4.0, 10.0);
        worse.final_loss = 1.0;
        let out = check(&worse, &hist, &cfg);
        match out {
            CheckOutcome::Fail { failures, .. } => {
                assert!(failures[0].contains("final training loss"), "{failures:?}");
            }
            o => panic!("expected failure, got {o:?}"),
        }
        // A pre-series entry on either side is never gated.
        let mut no_series = entry("smoke", "abc", 4.0, 10.0);
        no_series.final_loss = f64::NAN;
        assert!(check(&no_series, &hist, &cfg).passed());
        let mut old_hist = hist.clone();
        old_hist[0].final_loss = f64::NAN;
        assert!(check(&worse, &old_hist, &cfg).passed());
    }

    #[test]
    fn lint_summary_parses_slm_lint_json() {
        let dir = std::env::temp_dir().join("slm_report_lint_summary_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint.json");
        fs::write(
            &path,
            r#"{"clean":true,"files_scanned":101,"allowlist_len":65,"allowlisted":65,"waived":9,"rule_counts":{"no-expect":44,"lossy-cast":13},"findings":[]}"#,
        )
        .unwrap();
        let l = load_lint_summary(&path).unwrap();
        assert!(l.clean);
        assert_eq!(l.files_scanned, 101);
        assert_eq!(l.allowlist_len, 65);
        assert_eq!(l.waived, 9);
        assert_eq!(l.findings, 0);
        assert_eq!(
            l.rule_counts,
            vec![
                ("lossy-cast".to_string(), 13),
                ("no-expect".to_string(), 44)
            ]
        );
        assert!(load_lint_summary(&dir.join("missing.json")).is_none());
    }

    #[test]
    fn layer_key_parsing() {
        assert_eq!(
            parse_layer_key("nn.ue.layer.0.Conv2d.fwd.host_s"),
            Some(("ue", 0, "Conv2d", "fwd"))
        );
        assert_eq!(
            parse_layer_key("nn.bs.layer.1.Dense.bwd.host_s"),
            Some(("bs", 1, "Dense", "bwd"))
        );
        assert_eq!(parse_layer_key("train.step.host_s"), None);
        assert_eq!(parse_layer_key("nn.ue.layer.x.Conv2d.fwd.host_s"), None);
    }

    #[test]
    fn layer_rows_read_profiler_metrics() {
        let mut reg = sl_telemetry::MetricsRegistry::new();
        reg.observe("nn.ue.layer.0.Conv2d.fwd.host_s", 0.002);
        reg.observe("nn.ue.layer.0.Conv2d.fwd.host_s", 0.004);
        reg.observe("nn.ue.layer.0.Conv2d.bwd.host_s", 0.010);
        reg.gauge_add("nn.ue.layer.0.Conv2d.flops", 1e6);
        reg.gauge_set("nn.ue.layer.0.Conv2d.params", 40.0);
        reg.observe("nn.bs.layer.0.Lstm.fwd.host_s", 0.001);
        let rows = layer_rows(&reg.snapshot());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].side, "ue"); // UE sorts before BS
        assert_eq!(rows[0].name, "Conv2d");
        assert_eq!(rows[0].fwd_calls, 2);
        assert!((rows[0].fwd_s - 0.006).abs() < 1e-12);
        assert!((rows[0].bwd_s - 0.010).abs() < 1e-12);
        assert_eq!(rows[0].params, 40);
        assert!(rows[0].flops > 0.0);
        assert!(rows[0].fwd_p50_s > 0.0);
        assert_eq!(rows[1].side, "bs");
    }

    #[test]
    fn trajectory_round_trips_through_parser() {
        let dir = std::env::temp_dir().join("slm_report_test_traj");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_x.json");
        let _ = std::fs::remove_file(&path);
        let e1 = entry("smoke", "abc", 4.5, 10.0);
        let e2 = entry("smoke", "abc", 4.2, 10.0);
        assert_eq!(append_trajectory(&path, "x", &e1).unwrap(), 1);
        assert_eq!(append_trajectory(&path, "x", &e2).unwrap(), 2);
        let back = load_trajectory(&path).unwrap();
        assert_eq!(back, vec![e1, e2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_gates_rmse_and_time() {
        let cfg = CheckConfig::default();
        let base = entry("smoke", "abc", 4.0, 10.0);
        let hist = vec![entry("smoke", "other", 1.0, 1.0), base.clone()];

        assert_eq!(
            check(&entry("smoke", "new-config", 9.0, 9.0), &hist, &cfg),
            CheckOutcome::NoBaseline
        );
        assert!(check(&entry("smoke", "abc", 4.3, 10.0), &hist, &cfg).passed());
        // 2× RMSE must fail the gate.
        let out = check(&entry("smoke", "abc", 8.0, 10.0), &hist, &cfg);
        match out {
            CheckOutcome::Fail { failures, .. } => {
                assert!(failures[0].contains("val RMSE regressed"), "{failures:?}");
            }
            o => panic!("expected failure, got {o:?}"),
        }
        // Slower simulated time fails; faster passes.
        assert!(!check(&entry("smoke", "abc", 4.0, 20.0), &hist, &cfg).passed());
        assert!(check(&entry("smoke", "abc", 4.0, 5.0), &hist, &cfg).passed());
        // Health events fail even without a baseline.
        let mut sick = entry("smoke", "brand-new", 4.0, 10.0);
        sick.health_events = 1;
        assert!(!check(&sick, &hist, &cfg).passed());
    }
}
