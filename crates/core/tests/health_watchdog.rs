//! Integration tests for the training-health watchdog: a deliberately
//! diverging run (huge learning rate) must trip the monitor — aborting
//! under `abort`, completing under `warn` — and journal a
//! `health.diverged` event either way.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_core::{
    ExperimentConfig, HealthAction, HealthConfig, PoolingDim, Scheme, SplitTrainer, StopReason,
};
use sl_scene::{Scene, SceneConfig, SequenceDataset};
use sl_telemetry::{MemorySink, Telemetry, TelemetryMode};

fn dataset(seed: u64) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

fn diverging_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
    cfg.learning_rate = 1.0e4; // guaranteed divergence
    cfg.max_epochs = 20;
    cfg
}

fn tight_watchdog(action: HealthAction) -> HealthConfig {
    HealthConfig {
        action,
        patience: 5,
        warmup_steps: 2,
        ..HealthConfig::default()
    }
}

#[test]
fn diverging_run_aborts_with_health_event() {
    let ds = dataset(90);
    let mut t = SplitTrainer::new(diverging_config(), &ds);
    t.set_health_config(tight_watchdog(HealthAction::Abort));
    let (sink, events) = MemorySink::new();
    let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
    let out = t.train_with(&ds, &mut tele);

    assert_eq!(out.stop, StopReason::HealthAborted);
    assert!(t.health().tripped());
    // The run stopped long before the epoch budget.
    assert!(out.epochs < 20, "aborted at epoch {}", out.epochs);

    let evs = events.borrow();
    let health: Vec<_> = evs.iter().filter(|e| e.kind == "health.diverged").collect();
    assert_eq!(health.len(), 1, "exactly one health event per run");
    match health[0].field("action") {
        Some(sl_telemetry::Value::Str(s)) => assert_eq!(s, "abort"),
        f => panic!("health event missing action field: {f:?}"),
    }
    // The report is available and readable after the abort.
    let report = t.health().report();
    assert!(report.contains("training-health report"), "{report}");
}

#[test]
fn diverging_run_completes_under_warn() {
    let ds = dataset(90);
    let mut t = SplitTrainer::new(diverging_config(), &ds);
    t.set_health_config(tight_watchdog(HealthAction::Warn));
    let (sink, events) = MemorySink::new();
    let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
    let out = t.train_with(&ds, &mut tele);

    // Warn mode never aborts: the run uses its full epoch budget (the
    // sky-high RMSE never reaches the target).
    assert_ne!(out.stop, StopReason::HealthAborted);
    assert_eq!(out.epochs, 20);
    assert!(t.health().tripped());
    let evs = events.borrow();
    assert_eq!(
        evs.iter().filter(|e| e.kind == "health.diverged").count(),
        1,
        "the watchdog journals once, then goes quiet"
    );
}

#[test]
fn healthy_run_never_trips() {
    let ds = dataset(91);
    let cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
    let mut t = SplitTrainer::new(cfg, &ds);
    t.set_health_config(tight_watchdog(HealthAction::Abort));
    let (sink, events) = MemorySink::new();
    let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
    let out = t.train_with(&ds, &mut tele);
    assert_ne!(out.stop, StopReason::HealthAborted);
    assert!(!t.health().tripped());
    assert!(events.borrow().iter().all(|e| e.kind != "health.diverged"));
}
