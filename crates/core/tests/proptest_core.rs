//! Property-based tests of the split-learning core: payload formula,
//! quantizer bounds, scheme/pooling algebra, and model shape contracts.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_core::{PoolingDim, Quantizer, Scheme, SplitModel};
use sl_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quantizer_error_within_bound(
        values in proptest::collection::vec(0.0f32..1.0, 1..64),
        bits in 1usize..12,
    ) {
        let q = Quantizer::new(bits);
        let x = Tensor::from_slice(&values);
        let y = q.quantize(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            prop_assert!((a - b).abs() <= q.max_error() + 1e-6);
            prop_assert!((0.0..=1.0).contains(b));
        }
        // Idempotent.
        prop_assert_eq!(q.quantize(&y), y);
    }

    #[test]
    fn feature_dim_consistent(pixels in 1usize..2000) {
        prop_assert_eq!(Scheme::ImgRf.feature_dim(pixels), pixels + 1);
        prop_assert_eq!(Scheme::ImgOnly.feature_dim(pixels), pixels);
        prop_assert_eq!(Scheme::RfOnly.feature_dim(pixels), 1);
    }

    #[test]
    fn pooling_output_times_compression_is_area(h in 1usize..6, w in 1usize..6) {
        // For a 24x24 map every divisor window tiles exactly.
        let divisors = [1usize, 2, 3, 4, 6, 8, 12, 24];
        let wh = divisors[h % divisors.len()];
        let ww = divisors[w % divisors.len()];
        let p = PoolingDim::new(wh, ww);
        prop_assert_eq!(p.output_pixels(24, 24) * p.compression_factor(), 24 * 24);
    }

    #[test]
    fn payload_formula_matches_paper(batch in 1usize..128) {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SplitModel::new(
            Scheme::ImgRf, PoolingDim::new(4, 4), 16, 16, 4, 2, 8, 8, &mut rng,
        );
        // B_UL = N_H·N_W·B·R·L/(w_H·w_W) = 256·B·8·4/16.
        prop_assert_eq!(model.uplink_payload_bits(batch), (256 * batch * 8 * 4 / 16) as u64);
    }

    #[test]
    fn model_prediction_shape_and_finiteness(
        batch in 1usize..5,
        seed in 0u64..100,
        scheme_idx in 0usize..3,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SplitModel::new(
            scheme, PoolingDim::new(8, 8), 8, 8, 3, 2, 4, 8, &mut rng,
        );
        let images = scheme.uses_images().then(|| {
            sl_tensor::uniform([batch * 3, 1, 8, 8], 0.0, 1.0, &mut rng)
        });
        let powers = sl_tensor::randn([batch, 3], 0.0, 1.0, &mut rng);
        let batch_data = sl_core::Batch {
            images,
            powers_norm: powers,
            targets_norm: Tensor::zeros([batch, 1]),
            indices: vec![0; batch],
            seq_len: 3,
        };
        let pred = model.forward(&batch_data);
        prop_assert_eq!(pred.dims(), &[batch, 1]);
        prop_assert!(pred.all_finite());
    }
}
