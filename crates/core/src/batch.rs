//! Minibatch assembly from the sequence dataset.

use sl_scene::{PowerNormalizer, SequenceDataset};
use sl_tensor::Tensor;

/// One assembled minibatch, ready for [`crate::SplitModel`].
///
/// Layouts:
/// * `images`: `[B·L, 1, H, W]` with sequence step `t` of batch element
///   `b` at row `b·L + t` (so a row-major reshape to `[B, L, …]` is free).
/// * `powers_norm`: `[B, L]` normalized RF received powers.
/// * `targets_norm`: `[B, 1]` normalized prediction targets.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stacked image sequences (present iff the scheme uses images).
    pub images: Option<Tensor>,
    /// Normalized power history.
    pub powers_norm: Tensor,
    /// Normalized targets.
    pub targets_norm: Tensor,
    /// The dataset indices this batch was drawn from.
    pub indices: Vec<usize>,
    /// Sequence length `L`.
    pub seq_len: usize,
}

impl Batch {
    /// Assembles a batch for the samples at `indices`.
    ///
    /// `with_images` controls whether the (expensive) image tensor is
    /// built; RF-only training skips it.
    pub fn assemble(
        dataset: &SequenceDataset,
        normalizer: PowerNormalizer,
        indices: &[usize],
        with_images: bool,
    ) -> Batch {
        assert!(!indices.is_empty(), "Batch: empty index list");
        let b = indices.len();
        let l = dataset.seq_len();
        let first = dataset.sample(indices[0]);
        let (h, w) = (first.images[0].dims()[0], first.images[0].dims()[1]);

        let mut powers = Vec::with_capacity(b * l);
        let mut targets = Vec::with_capacity(b);
        let mut image_data = if with_images {
            Vec::with_capacity(b * l * h * w)
        } else {
            Vec::new()
        };

        for &k in indices {
            let s = dataset.sample(k);
            for &p in &s.powers_dbm {
                powers.push(normalizer.normalize(p));
            }
            targets.push(normalizer.normalize(s.target_dbm));
            if with_images {
                for img in &s.images {
                    image_data.extend_from_slice(img.data());
                }
            }
        }

        Batch {
            images: with_images.then(|| Tensor::from_parts([b * l, 1, h, w], image_data)),
            powers_norm: Tensor::from_parts([b, l], powers),
            targets_norm: Tensor::from_parts([b, 1], targets),
            indices: indices.to_vec(),
            seq_len: l,
        }
    }

    /// Batch size `B`.
    pub fn batch_size(&self) -> usize {
        self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_scene::{Scene, SceneConfig};

    fn dataset() -> SequenceDataset {
        let mut rng = StdRng::seed_from_u64(50);
        let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
        SequenceDataset::paper_windowing(scene.simulate(&mut rng))
    }

    #[test]
    fn layout_matches_dataset_samples() {
        let ds = dataset();
        let n = ds.normalizer();
        let idx = [ds.train_indices()[5], ds.train_indices()[40]];
        let batch = Batch::assemble(&ds, n, &idx, true);

        assert_eq!(batch.batch_size(), 2);
        let images = batch.images.as_ref().unwrap();
        assert_eq!(images.dims(), &[8, 1, 16, 16]);
        assert_eq!(batch.powers_norm.dims(), &[2, 4]);
        assert_eq!(batch.targets_norm.dims(), &[2, 1]);

        // Row b·L + t must be frame t of sample b.
        let s1 = ds.sample(idx[1]);
        for t in 0..4 {
            let row = 4 + t; // b = 1, L = 4
            for px in 0..16 {
                assert_eq!(
                    images.at(&[row, 0, 0, px]),
                    s1.images[t].at(&[0, px]),
                    "mismatch at step {t} pixel {px}"
                );
            }
            assert!((batch.powers_norm.at(&[1, t]) - n.normalize(s1.powers_dbm[t])).abs() < 1e-6);
        }
        assert!((batch.targets_norm.at(&[1, 0]) - n.normalize(s1.target_dbm)).abs() < 1e-6);
    }

    #[test]
    fn rf_only_batches_skip_images() {
        let ds = dataset();
        let batch = Batch::assemble(&ds, ds.normalizer(), &[ds.train_indices()[0]], false);
        assert!(batch.images.is_none());
        assert_eq!(batch.powers_norm.dims(), &[1, 4]);
    }

    #[test]
    #[should_panic(expected = "empty index list")]
    fn empty_batch_rejected() {
        let ds = dataset();
        Batch::assemble(&ds, ds.normalizer(), &[], true);
    }
}
