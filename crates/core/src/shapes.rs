//! Pre-run wiring validation for the split model.
//!
//! [`WiringSpec`] captures everything that determines the tensor shapes
//! of the UE→pool→payload→BS graph — image size, pooling window,
//! scheme, sequence length and network widths — and [`WiringSpec::check`]
//! propagates symbolic shapes through the *actual* layer stacks (built by
//! the same `ue::build_stack` / `bs::build_stack` the trainer uses)
//! without running a single forward pass. A miswired configuration —
//! a `w_H × w_W` window that does not tile the CNN output, or a BS input
//! dimension that disagrees with the fused feature width — is rejected
//! with a per-layer shape trace instead of panicking deep inside a
//! training run.
//!
//! Validated paths:
//!
//! 1. **UE training path**: `[B·L, 1, H, W]` through the full CNN + cut
//!    pool.
//! 2. **Fig. 2 partial path**: `[1, 1, H, W]` through the pre-pool CNN
//!    prefix, which must preserve the image size (the pooled-map /
//!    CNN-map extraction reshapes assume it).
//! 3. **BS training path**: the fused `[B, L, F]` sequence (with
//!    `F = scheme.feature_dim(pooled pixels)`) through the recurrent
//!    cell + dense head to the `[B, 1]` prediction.
//!
//! `SplitTrainer::new` runs this check before constructing the model,
//! and `slm-lint --shapes` runs it for every experiment profile.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_nn::shape::format_dims;
use sl_nn::{ShapeError, ShapeTrace};

use crate::bs::RnnCell;
use crate::config::ExperimentConfig;
use crate::pooling::PoolingDim;
use crate::scheme::Scheme;
use crate::{bs, ue};

/// The shape-determining parameters of one split-model configuration.
#[derive(Debug, Clone)]
pub struct WiringSpec {
    /// Input scheme (decides how pooled pixels and RF fuse into `F`).
    pub scheme: Scheme,
    /// Cut-layer pooling window.
    pub pooling: PoolingDim,
    /// Depth-image height `N_H`.
    pub image_h: usize,
    /// Depth-image width `N_W`.
    pub image_w: usize,
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Minibatch size `B`.
    pub batch_size: usize,
    /// UE CNN hidden channels.
    pub conv_channels: usize,
    /// BS recurrent hidden units.
    pub hidden_dim: usize,
    /// BS recurrent cell type.
    pub rnn_cell: RnnCell,
    /// Per-step input width the BS stack is built with. `None` (the
    /// default) derives it from the scheme and pooling — the correct
    /// wiring. `Some(n)` overrides it, which is how `slm-lint
    /// --miswire` injects a deliberately wrong BS input dimension to
    /// prove the checker rejects it.
    pub bs_feature_dim: Option<usize>,
}

impl WiringSpec {
    /// The wiring implied by an [`ExperimentConfig`] for a given scene
    /// geometry (image size and sequence length come from the dataset,
    /// not the config — mirroring `SplitTrainer::new`).
    pub fn from_config(
        config: &ExperimentConfig,
        image_h: usize,
        image_w: usize,
        seq_len: usize,
    ) -> Self {
        WiringSpec {
            scheme: config.scheme,
            pooling: config.pooling,
            image_h,
            image_w,
            seq_len,
            batch_size: config.batch_size,
            conv_channels: config.conv_channels,
            hidden_dim: config.hidden_dim,
            rnn_cell: config.rnn_cell,
            bs_feature_dim: None,
        }
    }

    /// Statically validates the full UE→pool→payload→BS graph, returning
    /// the per-layer traces of all three checked paths — or the first
    /// wiring fault, located to a layer.
    pub fn check(&self) -> Result<WiringReport, WiringError> {
        // Weight *values* are irrelevant to shape propagation; a fixed
        // seed keeps the checker deterministic and dependency-free.
        let mut rng = StdRng::seed_from_u64(0);
        let ue_stack = ue::build_stack(self.conv_channels.max(1), self.pooling, &mut rng);

        // Path 1: the training batch through the full UE stack.
        let n_images = self.batch_size * self.seq_len;
        let ue_trace = ue_stack
            .shape_trace(&[n_images, 1, self.image_h, self.image_w])
            .map_err(WiringError::Ue)?;

        // Path 2: the Fig. 2 pre-pool prefix must preserve the image
        // size (the `infer_cnn_map` reshape back to `[H, W]` depends on
        // it).
        let ue_partial_trace = ue_stack
            .shape_trace_partial(ue::CNN_LAYERS, &[1, 1, self.image_h, self.image_w])
            .map_err(WiringError::UePartial)?;
        let expected_partial = vec![1, 1, self.image_h, self.image_w];
        if ue_partial_trace.output != expected_partial {
            return Err(WiringError::PartialNotSizePreserving {
                expected: expected_partial,
                trace: ue_partial_trace,
            });
        }

        // The cut-layer payload: pooled pixels per image, fused with the
        // RF scalar according to the scheme.
        let pooled_pixels = ue_trace.output[1..].iter().product::<usize>();
        let feature_dim = self.scheme.feature_dim(pooled_pixels);

        // Path 3: the fused sequence through the BS stack (built with
        // the possibly-overridden input width — a mismatch surfaces as
        // a per-layer shape error at the recurrent cell).
        let bs_input = self.bs_feature_dim.unwrap_or(feature_dim);
        let bs_stack = bs::build_stack(bs_input, self.hidden_dim, self.rnn_cell, &mut rng);
        let bs_trace = bs_stack
            .shape_trace(&[self.batch_size, self.seq_len, feature_dim])
            .map_err(|e| WiringError::Bs {
                error: e,
                pooled_pixels,
                feature_dim,
            })?;
        let expected_out = vec![self.batch_size, 1];
        if bs_trace.output != expected_out {
            return Err(WiringError::BsOutput {
                expected: expected_out,
                trace: bs_trace,
            });
        }

        Ok(WiringReport {
            ue_trace,
            ue_partial_trace,
            bs_trace,
            pooled_pixels,
            feature_dim,
        })
    }
}

/// The per-layer traces of a successfully validated wiring.
#[derive(Debug, Clone)]
pub struct WiringReport {
    /// UE training path `[B·L, 1, H, W]` → pooled maps.
    pub ue_trace: ShapeTrace,
    /// Fig. 2 pre-pool prefix `[1, 1, H, W]` → CNN map.
    pub ue_partial_trace: ShapeTrace,
    /// BS path `[B, L, F]` → `[B, 1]` prediction.
    pub bs_trace: ShapeTrace,
    /// Cut-layer payload pixels per image.
    pub pooled_pixels: usize,
    /// Fused per-step feature width `F`.
    pub feature_dim: usize,
}

impl fmt::Display for WiringReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "UE stack:")?;
        writeln!(f, "{}", self.ue_trace)?;
        writeln!(f, "UE pre-pool prefix (Fig. 2 CNN map):")?;
        writeln!(f, "{}", self.ue_partial_trace)?;
        writeln!(
            f,
            "cut-layer payload: {} pooled pixel(s)/image, fused feature width {}",
            self.pooled_pixels, self.feature_dim
        )?;
        writeln!(f, "BS stack:")?;
        write!(f, "{}", self.bs_trace)
    }
}

/// A located wiring fault.
#[derive(Debug, Clone)]
pub enum WiringError {
    /// The UE training path rejected its input.
    Ue(ShapeError),
    /// The Fig. 2 pre-pool prefix rejected its input.
    UePartial(ShapeError),
    /// The pre-pool prefix no longer preserves the image size.
    PartialNotSizePreserving {
        /// The `[1, 1, H, W]` shape the Fig. 2 reshapes assume.
        expected: Vec<usize>,
        /// The trace that produced something else.
        trace: ShapeTrace,
    },
    /// The BS path rejected the fused sequence.
    Bs {
        /// The per-layer shape error (located at the recurrent cell for
        /// a feature-width mismatch).
        error: ShapeError,
        /// Pooled pixels the UE path produced.
        pooled_pixels: usize,
        /// The fused feature width the scheme derived from them.
        feature_dim: usize,
    },
    /// The BS stack produced something other than `[B, 1]`.
    BsOutput {
        /// The expected prediction shape.
        expected: Vec<usize>,
        /// The trace that produced something else.
        trace: ShapeTrace,
    },
}

impl fmt::Display for WiringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WiringError::Ue(e) => {
                writeln!(f, "UE stack rejected its input:")?;
                write!(f, "{e}")
            }
            WiringError::UePartial(e) => {
                writeln!(f, "UE pre-pool prefix (Fig. 2 path) rejected its input:")?;
                write!(f, "{e}")
            }
            WiringError::PartialNotSizePreserving { expected, trace } => {
                writeln!(
                    f,
                    "UE pre-pool prefix must preserve the image size {} but produced {}:",
                    format_dims(expected),
                    format_dims(&trace.output)
                )?;
                write!(f, "{trace}")
            }
            WiringError::Bs {
                error,
                pooled_pixels,
                feature_dim,
            } => {
                writeln!(
                    f,
                    "BS stack rejected the fused sequence ({pooled_pixels} pooled pixel(s)/image \
                     fuse to feature width {feature_dim}):"
                )?;
                write!(f, "{error}")
            }
            WiringError::BsOutput { expected, trace } => {
                writeln!(
                    f,
                    "BS stack must predict {} but produced {}:",
                    format_dims(expected),
                    format_dims(&trace.output)
                )?;
                write!(f, "{trace}")
            }
        }
    }
}

impl std::error::Error for WiringError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's scene geometry: 40×40 depth images, L = 4.
    fn paper_spec(config: &ExperimentConfig) -> WiringSpec {
        WiringSpec::from_config(config, 40, 40, 4)
    }

    #[test]
    fn every_paper_profile_config_is_well_wired() {
        for scheme in [Scheme::ImgRf, Scheme::ImgOnly, Scheme::RfOnly] {
            for pooling in PoolingDim::TABLE1 {
                for config in [
                    ExperimentConfig::paper(scheme, pooling),
                    ExperimentConfig::paper_literal_link(scheme, pooling),
                ] {
                    let report = paper_spec(&config)
                        .check()
                        .unwrap_or_else(|e| panic!("{scheme:?}/{pooling}: {e}"));
                    let pooled = (40 / pooling.h) * (40 / pooling.w);
                    assert_eq!(report.pooled_pixels, pooled);
                    assert_eq!(report.feature_dim, scheme.feature_dim(pooled));
                    assert_eq!(report.bs_trace.output, vec![config.batch_size, 1]);
                    assert_eq!(report.ue_partial_trace.output, vec![1, 1, 40, 40]);
                }
            }
        }
    }

    #[test]
    fn quick_config_is_well_wired_on_test_scenes() {
        // Tests run on 16×16 scenes with 4×4 pooling.
        let config = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(4, 4));
        let spec = WiringSpec::from_config(&config, 16, 16, 4);
        let report = spec.check().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.pooled_pixels, 16);
        assert_eq!(report.feature_dim, 17);
    }

    #[test]
    fn non_tiling_pool_is_rejected_at_the_pool_layer() {
        let config = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::new(3, 3));
        let err = paper_spec(&config).check().unwrap_err();
        match &err {
            WiringError::Ue(e) => {
                assert_eq!(e.layer, "avg_pool2d");
                assert_eq!(e.index, 4);
                // The four size-preserving CNN layers checked out first.
                assert_eq!(e.steps.len(), 4);
            }
            other => panic!("expected a UE pool error, got {other}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("does not tile"), "{rendered}");
        assert!(rendered.contains("SHAPE ERROR"), "{rendered}");
    }

    #[test]
    fn miswired_bs_input_dim_is_rejected_with_a_trace() {
        let config = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        let mut spec = paper_spec(&config);
        // 1-pixel Img+RF fuses to 2 features; wire the BS for 17.
        spec.bs_feature_dim = Some(17);
        let err = spec.check().unwrap_err();
        match &err {
            WiringError::Bs {
                error, feature_dim, ..
            } => {
                assert_eq!(*feature_dim, 2);
                assert_eq!(error.layer, "lstm");
                assert_eq!(error.index, 0);
            }
            other => panic!("expected a BS error, got {other}"),
        }
        assert!(err.to_string().contains("input_dim 17"), "{err}");
    }

    #[test]
    fn report_renders_all_three_paths() {
        let config = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        let report = paper_spec(&config).check().unwrap();
        let s = report.to_string();
        assert!(s.contains("UE stack:"), "{s}");
        assert!(s.contains("Fig. 2"), "{s}");
        assert!(s.contains("BS stack:"), "{s}");
        assert!(s.contains("fused feature width 2"), "{s}");
    }
}
