//! Training-health watchdog.
//!
//! Long simulated-training runs can silently go bad: a NaN loss, an
//! exploding gradient, or a loss that quietly diverges while the run
//! keeps burning compute. The [`HealthMonitor`] watches the per-step
//! statistics the trainer already computes — loss (tracked as an EMA),
//! clipped gradient norms, weight-update ratios and non-finite counts —
//! and raises a [`HealthVerdict`] when training is demonstrably
//! diverging. What happens then is configured by `SLM_HEALTH`:
//!
//! * `warn` (default) — emit a `health.diverged` event and keep going;
//! * `abort` — stop the run with [`crate::StopReason::HealthAborted`]
//!   and a readable report;
//! * `off` — disable the watchdog entirely.

use std::fmt;

/// What to do when the watchdog trips. Parsed from `SLM_HEALTH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthAction {
    /// Emit a diagnostic event and continue training (default).
    #[default]
    Warn,
    /// Stop the run with [`crate::StopReason::HealthAborted`].
    Abort,
    /// Watchdog disabled: observe nothing, never trip.
    Off,
}

impl HealthAction {
    /// Parses an `SLM_HEALTH` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warn" => Some(HealthAction::Warn),
            "abort" => Some(HealthAction::Abort),
            "off" => Some(HealthAction::Off),
            _ => None,
        }
    }
}

/// Watchdog thresholds. The defaults are deliberately loose: the goal is
/// to catch *demonstrable* divergence (NaNs, loss exploding past many
/// multiples of its best value), not to second-guess a noisy optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// What to do when the watchdog trips.
    pub action: HealthAction,
    /// EMA smoothing factor for the per-step loss.
    pub ema_alpha: f64,
    /// A step is "divergent" when the loss EMA exceeds
    /// `divergence_factor × best_ema` (or the update ratio exceeds
    /// [`HealthConfig::max_update_ratio`]).
    pub divergence_factor: f64,
    /// Consecutive divergent steps before tripping.
    pub patience: usize,
    /// Steps before the best-EMA baseline starts updating (lets the
    /// early transient settle).
    pub warmup_steps: usize,
    /// Total non-finite observations (loss or gradient norms) before
    /// tripping outright.
    pub nonfinite_tolerance: u64,
    /// Per-step `‖Δθ‖/‖θ‖` above this counts as a divergent step.
    pub max_update_ratio: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            action: HealthAction::Warn,
            ema_alpha: 0.1,
            divergence_factor: 8.0,
            patience: 25,
            warmup_steps: 10,
            nonfinite_tolerance: 3,
            max_update_ratio: 10.0,
        }
    }
}

impl HealthConfig {
    /// Builds the config from the `SLM_HEALTH` environment variable.
    pub fn from_env() -> Self {
        let raw = std::env::var("SLM_HEALTH").ok();
        HealthConfig::from_settings(raw.as_deref())
    }

    /// [`HealthConfig::from_env`] with the environment made explicit
    /// (testable without mutating process state). Unrecognized values
    /// fall back to `warn`; the monitor reports the bad value so the
    /// trainer can surface a warning.
    pub fn from_settings(value: Option<&str>) -> Self {
        let action = match value {
            None => HealthAction::Warn,
            Some(s) => HealthAction::parse(s).unwrap_or(HealthAction::Warn),
        };
        HealthConfig {
            action,
            ..HealthConfig::default()
        }
    }
}

/// Per-step statistics fed to the monitor by the trainer.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// Raw (pre-clip) batch loss.
    pub loss: f64,
    /// UE-side global gradient norm (0 for RF-only).
    pub grad_norm_ue: f64,
    /// BS-side global gradient norm.
    pub grad_norm_bs: f64,
    /// UE-side `‖Δθ‖/‖θ‖` for the optimizer step just applied.
    pub update_ratio_ue: f64,
    /// BS-side `‖Δθ‖/‖θ‖`.
    pub update_ratio_bs: f64,
}

/// Why the watchdog tripped.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthVerdict {
    /// Too many NaN/inf observations.
    NonFinite {
        /// The metric whose observation pushed the count over the
        /// tolerance (e.g. `loss`, `grad_norm.ue`).
        metric: String,
        /// Total non-finite observations so far.
        count: u64,
    },
    /// Sustained divergence of the loss EMA or update ratio.
    Diverged {
        /// The metric that kept the divergence streak alive.
        metric: String,
        /// Current loss EMA.
        ema: f64,
        /// Best (lowest) post-warmup loss EMA.
        best_ema: f64,
        /// Length of the divergent streak.
        streak: usize,
    },
}

impl HealthVerdict {
    /// The offending metric name.
    pub fn metric(&self) -> &str {
        match self {
            HealthVerdict::NonFinite { metric, .. } => metric,
            HealthVerdict::Diverged { metric, .. } => metric,
        }
    }
}

impl fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthVerdict::NonFinite { metric, count } => {
                write!(f, "{count} non-finite observations (last: {metric})")
            }
            HealthVerdict::Diverged {
                metric,
                ema,
                best_ema,
                streak,
            } => write!(
                f,
                "{metric} diverged for {streak} consecutive steps \
                 (loss EMA {ema:.3e} vs best {best_ema:.3e})"
            ),
        }
    }
}

/// Tracks per-step training statistics and trips on demonstrable
/// divergence. One verdict per run: after tripping, the monitor goes
/// quiet (the caller decides whether to abort).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    step: u64,
    ema: Option<f64>,
    best_ema: f64,
    streak: usize,
    nonfinite_loss: u64,
    nonfinite_grad: u64,
    nonfinite_ratio: u64,
    tripped: bool,
    last_stats: Option<StepStats>,
}

impl HealthMonitor {
    /// A monitor with the given thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            step: 0,
            ema: None,
            best_ema: f64::INFINITY,
            streak: 0,
            nonfinite_loss: 0,
            nonfinite_grad: 0,
            nonfinite_ratio: 0,
            tripped: false,
            last_stats: None,
        }
    }

    /// A monitor configured from `SLM_HEALTH`.
    pub fn from_env() -> Self {
        HealthMonitor::new(HealthConfig::from_env())
    }

    /// The active configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// `true` once the watchdog has tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Total non-finite loss observations so far.
    pub fn nonfinite_loss(&self) -> u64 {
        self.nonfinite_loss
    }

    /// Total non-finite gradient-norm observations so far.
    pub fn nonfinite_grad(&self) -> u64 {
        self.nonfinite_grad
    }

    /// Current loss EMA, when at least one finite loss was seen.
    pub fn loss_ema(&self) -> Option<f64> {
        self.ema
    }

    /// Whether update-ratio tracking is needed (lets the trainer skip
    /// the parameter-copy overhead when the watchdog is off).
    pub fn wants_update_ratio(&self) -> bool {
        self.cfg.action != HealthAction::Off && !self.tripped
    }

    /// Feeds one step's statistics. Returns a verdict the first time the
    /// watchdog trips, `None` otherwise.
    pub fn observe_step(&mut self, stats: StepStats) -> Option<HealthVerdict> {
        if self.cfg.action == HealthAction::Off || self.tripped {
            return None;
        }
        self.step += 1;
        self.last_stats = Some(stats);

        // Non-finite bookkeeping. Each non-finite observation counts
        // toward one shared tolerance: a single NaN is survivable (the
        // trainer skips the step), a stream of them is divergence.
        let mut last_nonfinite = None;
        if !stats.loss.is_finite() {
            self.nonfinite_loss += 1;
            last_nonfinite = Some("loss");
        }
        if !stats.grad_norm_ue.is_finite() {
            self.nonfinite_grad += 1;
            last_nonfinite = Some("grad_norm.ue");
        }
        if !stats.grad_norm_bs.is_finite() {
            self.nonfinite_grad += 1;
            last_nonfinite = Some("grad_norm.bs");
        }
        if !stats.update_ratio_ue.is_finite() {
            self.nonfinite_ratio += 1;
            last_nonfinite = Some("update_ratio.ue");
        }
        if !stats.update_ratio_bs.is_finite() {
            self.nonfinite_ratio += 1;
            last_nonfinite = Some("update_ratio.bs");
        }
        let nonfinite_total = self.nonfinite_loss + self.nonfinite_grad + self.nonfinite_ratio;
        if let Some(metric) = last_nonfinite {
            if nonfinite_total >= self.cfg.nonfinite_tolerance {
                self.tripped = true;
                return Some(HealthVerdict::NonFinite {
                    metric: metric.to_string(),
                    count: nonfinite_total,
                });
            }
            // A non-finite step contributes no EMA update but keeps the
            // divergence streak alive.
            self.streak += 1;
        }

        // Loss EMA tracking (finite losses only).
        if stats.loss.is_finite() {
            let a = self.cfg.ema_alpha;
            let ema = match self.ema {
                Some(prev) => a * stats.loss + (1.0 - a) * prev,
                None => stats.loss,
            };
            self.ema = Some(ema);
            if self.step <= self.cfg.warmup_steps as u64 {
                self.best_ema = self.best_ema.min(ema);
                return None;
            }
            let diverged_loss = ema > self.cfg.divergence_factor * self.best_ema.max(f64::EPSILON);
            let diverged_ratio = stats.update_ratio_ue > self.cfg.max_update_ratio
                || stats.update_ratio_bs > self.cfg.max_update_ratio;
            if diverged_loss || diverged_ratio {
                self.streak += 1;
            } else {
                self.streak = 0;
                self.best_ema = self.best_ema.min(ema);
            }
            if self.streak >= self.cfg.patience {
                self.tripped = true;
                return Some(HealthVerdict::Diverged {
                    metric: if diverged_loss {
                        "loss_ema".to_string()
                    } else {
                        "update_ratio".to_string()
                    },
                    ema,
                    best_ema: self.best_ema,
                    streak: self.streak,
                });
            }
        } else if self.streak >= self.cfg.patience {
            // All-non-finite streams can also exhaust patience.
            self.tripped = true;
            return Some(HealthVerdict::Diverged {
                metric: "loss".to_string(),
                ema: self.ema.unwrap_or(f64::NAN),
                best_ema: self.best_ema,
                streak: self.streak,
            });
        }
        None
    }

    /// A multi-line human-readable state dump, used for the abort report.
    pub fn report(&self) -> String {
        let mut out = String::from("training-health report:\n");
        out.push_str(&format!("  steps observed: {}\n", self.step));
        match self.ema {
            Some(e) => out.push_str(&format!(
                "  loss EMA: {e:.6e} (best {:.6e})\n",
                self.best_ema
            )),
            None => out.push_str("  loss EMA: no finite losses observed\n"),
        }
        out.push_str(&format!("  divergent streak: {}\n", self.streak));
        out.push_str(&format!(
            "  non-finite: loss {} / grad {} / update-ratio {}\n",
            self.nonfinite_loss, self.nonfinite_grad, self.nonfinite_ratio
        ));
        if let Some(s) = self.last_stats {
            out.push_str(&format!(
                "  last step: loss {:.6e}, grad_norm ue {:.3e} bs {:.3e}, \
                 update_ratio ue {:.3e} bs {:.3e}",
                s.loss, s.grad_norm_ue, s.grad_norm_bs, s.update_ratio_ue, s.update_ratio_bs
            ));
        }
        out
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor::new(HealthConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_stats(loss: f64) -> StepStats {
        StepStats {
            loss,
            grad_norm_ue: 1.0,
            grad_norm_bs: 1.0,
            update_ratio_ue: 1e-3,
            update_ratio_bs: 1e-3,
        }
    }

    #[test]
    fn action_parsing() {
        assert_eq!(HealthAction::parse("warn"), Some(HealthAction::Warn));
        assert_eq!(HealthAction::parse("abort"), Some(HealthAction::Abort));
        assert_eq!(HealthAction::parse("off"), Some(HealthAction::Off));
        assert_eq!(HealthAction::parse("WARN"), None);
        assert_eq!(HealthAction::parse("strict"), None);
        assert_eq!(
            HealthConfig::from_settings(Some("abort")).action,
            HealthAction::Abort
        );
        assert_eq!(
            HealthConfig::from_settings(Some("bogus")).action,
            HealthAction::Warn
        );
        assert_eq!(HealthConfig::from_settings(None).action, HealthAction::Warn);
    }

    #[test]
    fn healthy_stream_never_trips() {
        let mut m = HealthMonitor::default();
        for i in 0..500 {
            let loss = 1.0 / (1.0 + i as f64 * 0.01); // steadily improving
            assert_eq!(m.observe_step(ok_stats(loss)), None);
        }
        assert!(!m.tripped());
    }

    #[test]
    fn noisy_but_bounded_stream_never_trips() {
        let mut m = HealthMonitor::default();
        for i in 0..500 {
            // Oscillates ×2 around 1.0 — inside the 8× divergence factor.
            let loss = if i % 2 == 0 { 2.0 } else { 0.5 };
            assert_eq!(m.observe_step(ok_stats(loss)), None);
        }
    }

    #[test]
    fn nonfinite_observations_trip_after_tolerance() {
        let mut m = HealthMonitor::default();
        assert_eq!(m.observe_step(ok_stats(f64::NAN)), None);
        assert_eq!(m.observe_step(ok_stats(f64::INFINITY)), None);
        let v = m.observe_step(ok_stats(f64::NAN)).expect("must trip");
        assert_eq!(
            v,
            HealthVerdict::NonFinite {
                metric: "loss".to_string(),
                count: 3
            }
        );
        assert!(m.tripped());
        assert_eq!(m.nonfinite_loss(), 3);
        // After tripping the monitor goes quiet.
        assert_eq!(m.observe_step(ok_stats(f64::NAN)), None);
    }

    #[test]
    fn sustained_divergence_trips_with_patience() {
        let cfg = HealthConfig {
            patience: 5,
            warmup_steps: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        for _ in 0..10 {
            assert_eq!(m.observe_step(ok_stats(1.0)), None);
        }
        // Loss explodes; EMA needs a few steps to cross 8× best, then
        // 5 more consecutive divergent steps to trip.
        let mut verdict = None;
        for _ in 0..40 {
            verdict = m.observe_step(ok_stats(1e6));
            if verdict.is_some() {
                break;
            }
        }
        match verdict.expect("must trip") {
            HealthVerdict::Diverged {
                metric,
                streak,
                ema,
                best_ema,
            } => {
                assert_eq!(metric, "loss_ema");
                assert!(streak >= 5);
                assert!(ema > 8.0 * best_ema);
            }
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn recovery_resets_the_streak() {
        // A fast EMA so recovery shows up within a step or two.
        let cfg = HealthConfig {
            patience: 6,
            warmup_steps: 2,
            ema_alpha: 0.9,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        for _ in 0..5 {
            m.observe_step(ok_stats(1.0));
        }
        // Bursts of three divergent steps followed by recoveries: the
        // EMA drops back under the divergence threshold before the
        // streak reaches 6, so the watchdog never trips.
        for _ in 0..20 {
            for _ in 0..3 {
                assert_eq!(m.observe_step(ok_stats(100.0)), None);
            }
            for _ in 0..3 {
                assert_eq!(m.observe_step(ok_stats(1.0)), None);
            }
        }
        assert!(!m.tripped());
    }

    #[test]
    fn huge_update_ratio_counts_as_divergence() {
        let cfg = HealthConfig {
            patience: 3,
            warmup_steps: 1,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        m.observe_step(ok_stats(1.0));
        let bad = StepStats {
            update_ratio_bs: 100.0,
            ..ok_stats(1.0)
        };
        assert_eq!(m.observe_step(bad), None);
        assert_eq!(m.observe_step(bad), None);
        let v = m.observe_step(bad).expect("must trip");
        assert_eq!(v.metric(), "update_ratio");
    }

    #[test]
    fn off_mode_observes_nothing() {
        let cfg = HealthConfig {
            action: HealthAction::Off,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        assert!(!m.wants_update_ratio());
        for _ in 0..100 {
            assert_eq!(m.observe_step(ok_stats(f64::NAN)), None);
        }
        assert!(!m.tripped());
        assert_eq!(m.nonfinite_loss(), 0);
    }

    #[test]
    fn report_is_readable() {
        let mut m = HealthMonitor::default();
        m.observe_step(ok_stats(2.0));
        m.observe_step(ok_stats(f64::NAN));
        let r = m.report();
        assert!(r.contains("steps observed: 2"), "{r}");
        assert!(r.contains("loss EMA"), "{r}");
        assert!(r.contains("non-finite: loss 1"), "{r}");
    }
}
