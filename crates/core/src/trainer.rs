//! Communication-aware split training.
//!
//! Each SGD step walks the paper's Fig. 1 loop:
//!
//! 1. the UE runs its CNN over the minibatch image sequences (modelled
//!    compute time),
//! 2. the quantized cut-layer activations cross the **uplink** (simulated
//!    slot-by-slot, with retransmissions),
//! 3. the BS fuses them with the RF power history, runs the LSTM + head,
//!    computes the MSE loss and backpropagates (modelled compute time),
//! 4. the cut-layer gradient crosses the **downlink**,
//! 5. both halves apply their Adam updates.
//!
//! The [`SimClock`] sums the modelled compute and the simulated airtime —
//! that sum is Fig. 3a's "elapsed time in training" axis. A payload that
//! exhausts its slot budget (possible only for bulky poolings) voids the
//! step; enough consecutive timeouts abort training with
//! [`StopReason::LinkStalled`].

use std::path::{Path, PathBuf};

use sl_channel::TransferSimulator;
use sl_nn::{clip_global_norm, mse_loss, rmse, Adam, Optimizer};
use sl_scene::SequenceDataset;
use sl_store::{ActivationLog, DirStorage, StoreMetrics};
use sl_telemetry::{sim_us, EventBuilder, SimSpan, Stopwatch, Telemetry, Tracer, Value};
use sl_tensor::Tensor;

use crate::batch::Batch;
use crate::checkpoint::{self, CheckpointError, TrainCheckpoint};
use crate::clock::SimClock;
use crate::config::ExperimentConfig;
use crate::health::{HealthAction, HealthConfig, HealthMonitor, StepStats};
use crate::model::SplitModel;
use crate::rng::CountingRng;
use crate::scheme::Scheme;

/// One learning-curve sample (taken after each validation pass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Simulated elapsed training time, seconds.
    pub elapsed_s: f64,
    /// Epochs completed (0 = before any training).
    pub epoch: usize,
    /// Validation RMSE in dB.
    pub val_rmse_db: f32,
}

/// Why training ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Validation RMSE reached the target (paper: 2.7 dB).
    TargetReached,
    /// The epoch budget ran out (paper: 100 epochs).
    EpochLimit,
    /// Too many consecutive cut-layer payloads timed out — the pooling
    /// is too bulky for the link (the fate of 1×1 pooling under the
    /// paper's whole-payload policy).
    LinkStalled,
    /// The training-health watchdog tripped under `SLM_HEALTH=abort`
    /// (NaN/inf stream or sustained divergence).
    HealthAborted,
}

/// One point of a Fig. 3b prediction trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionPoint {
    /// Trace index of the *target* sample.
    pub index: usize,
    /// Trace time of the target sample, seconds.
    pub time_s: f64,
    /// Predicted received power, dBm.
    pub predicted_dbm: f32,
    /// Ground-truth received power, dBm.
    pub actual_dbm: f32,
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Learning curve, starting with the untrained epoch-0 point.
    pub curve: Vec<CurvePoint>,
    /// Why training stopped.
    pub stop: StopReason,
    /// Final validation RMSE in dB.
    pub final_rmse_db: f32,
    /// Epochs completed.
    pub epochs: usize,
    /// SGD steps applied.
    pub steps_applied: u64,
    /// Steps voided by payload timeouts.
    pub steps_voided: u64,
    /// Simulated seconds spent computing.
    pub compute_s: f64,
    /// Simulated seconds spent on the air.
    pub airtime_s: f64,
}

impl TrainOutcome {
    /// Total simulated elapsed seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.compute_s + self.airtime_s
    }

    /// Best (minimum) validation RMSE seen, dB.
    pub fn best_rmse_db(&self) -> f32 {
        self.curve
            .iter()
            .map(|p| p.val_rmse_db)
            .fold(f32::INFINITY, f32::min)
    }

    /// Elapsed seconds at which the curve first dips below `rmse_db`,
    /// or `None` if it never does.
    pub fn time_to_rmse(&self, rmse_db: f32) -> Option<f64> {
        self.curve
            .iter()
            .find(|p| p.val_rmse_db <= rmse_db)
            .map(|p| p.elapsed_s)
    }
}

/// Trains one [`SplitModel`] under one [`ExperimentConfig`].
pub struct SplitTrainer {
    config: ExperimentConfig,
    model: SplitModel,
    opt_ue: Adam,
    opt_bs: Adam,
    uplink: TransferSimulator,
    downlink: TransferSimulator,
    clock: SimClock,
    rng: CountingRng,
    health: HealthMonitor,
    tracer: Option<Tracer>,
    steps_seen: u64,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<ResumeState>,
    store_metrics: StoreMetrics,
    activation_log: Option<ActivationLog<DirStorage>>,
}

/// Loop state restored by [`SplitTrainer::resume_from_checkpoint`],
/// consumed by the next [`SplitTrainer::train_with`] call.
struct ResumeState {
    epoch: usize,
    steps_applied: u64,
    steps_voided: u64,
    consecutive_voids: usize,
    curve: Vec<CurvePoint>,
}

impl SplitTrainer {
    /// Builds a trainer for `dataset` (image size and `L` are read from
    /// it).
    pub fn new(config: ExperimentConfig, dataset: &SequenceDataset) -> Self {
        config.validate();
        let mut rng = CountingRng::seed_from_u64(config.seed);
        let frame = &dataset.trace().frames[0];
        let (h, w) = (frame.dims()[0], frame.dims()[1]);
        // Static shape-contract check: reject a miswired configuration
        // with a per-layer trace *before* any tensor work happens.
        if let Err(e) = crate::WiringSpec::from_config(&config, h, w, dataset.seq_len()).check() {
            panic!("SplitTrainer: miswired split-model configuration\n{e}");
        }
        let model = SplitModel::with_cell(
            config.scheme,
            config.pooling,
            h,
            w,
            dataset.seq_len(),
            config.conv_channels,
            config.hidden_dim,
            config.bit_depth,
            config.rnn_cell,
            &mut rng,
        );
        let lr = config.learning_rate;
        SplitTrainer {
            opt_ue: Adam::new(lr, 0.9, 0.999, 1e-8),
            opt_bs: Adam::new(lr, 0.9, 0.999, 1e-8),
            uplink: TransferSimulator::new(config.uplink.clone(), config.retransmission),
            downlink: TransferSimulator::new(config.downlink.clone(), config.retransmission),
            clock: SimClock::new(),
            model,
            config,
            rng,
            health: HealthMonitor::from_env(),
            tracer: None,
            steps_seen: 0,
            checkpoint_dir: None,
            resume: None,
            store_metrics: StoreMetrics::default(),
            activation_log: None,
        }
    }

    /// The config label used for span/session attribution (matches the
    /// networked trainer and the BS server).
    fn session_label(&self) -> String {
        if self.config.scheme == Scheme::RfOnly {
            self.config.scheme.to_string()
        } else {
            format!("{}, {}", self.config.scheme, self.config.pooling)
        }
    }

    /// Replaces the `SLM_HEALTH`-derived watchdog configuration (for
    /// tests and programmatic callers; resets the monitor's state).
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health = HealthMonitor::new(cfg);
    }

    /// The training-health watchdog state.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// The model (e.g. for Fig. 2 visualizations after training).
    pub fn model_mut(&mut self) -> &mut SplitModel {
        &mut self.model
    }

    /// The simulated clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Enables per-epoch checkpointing into `dir` (an `sl-store`
    /// directory; created on first save). Each completed epoch commits
    /// the full trainer state — a later
    /// [`SplitTrainer::resume_from_checkpoint`] continues the run with
    /// bitwise-identical results.
    pub fn set_checkpoint_dir(&mut self, dir: impl Into<PathBuf>) {
        self.checkpoint_dir = Some(dir.into());
    }

    /// Attaches an append-only activation log: every applied training
    /// step appends the batch's quantized cut-layer activations (exactly
    /// the values that cross the air) for offline privacy audits.
    pub fn set_activation_log(&mut self, log: ActivationLog<DirStorage>) {
        self.activation_log = Some(log);
    }

    /// Detaches the activation log (e.g. to audit it after training).
    pub fn take_activation_log(&mut self) -> Option<ActivationLog<DirStorage>> {
        self.activation_log.take()
    }

    /// Store counters accumulated by checkpointing and activation
    /// logging (drained into `store.*` telemetry at the end of a
    /// telemetry-enabled run).
    pub fn store_metrics(&self) -> &StoreMetrics {
        &self.store_metrics
    }

    /// Restores the trainer from a checkpoint directory written by a
    /// previous run of the *same configuration* (scheme, pooling and
    /// seed are fingerprinted; anything else that diverges shows up as a
    /// parameter-count mismatch). Call on a freshly-built trainer; the
    /// next [`SplitTrainer::train_with`] then continues from the
    /// checkpointed epoch. Returns the last completed epoch.
    pub fn resume_from_checkpoint(&mut self, dir: &Path) -> Result<usize, CheckpointError> {
        let ck = checkpoint::load(dir, &mut self.store_metrics)?;
        let scheme = self.config.scheme.to_string();
        let pooling = self.config.pooling.to_string();
        if ck.scheme != scheme || ck.pooling != pooling || ck.seed != self.config.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is {} / {} / seed {}, trainer is {scheme} / {pooling} / seed {}",
                ck.scheme, ck.pooling, ck.seed, self.config.seed
            )));
        }
        let ue_dims: Vec<Vec<usize>> = self
            .model
            .ue_params_and_grads()
            .iter()
            .map(|(p, _)| p.dims().to_vec())
            .collect();
        let bs_dims: Vec<Vec<usize>> = self
            .model
            .bs_params_and_grads()
            .iter()
            .map(|(p, _)| p.dims().to_vec())
            .collect();
        let total: usize = ue_dims
            .iter()
            .chain(&bs_dims)
            .map(|d| d.iter().product::<usize>())
            .sum();
        if ck.params.len() != total {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint holds {} parameter values, model has {total}",
                ck.params.len()
            )));
        }
        let mut at = 0usize;
        for (p, _) in self.model.ue_params_and_grads() {
            let n = p.data().len();
            p.data_mut().copy_from_slice(&ck.params[at..at + n]);
            at += n;
        }
        for (p, _) in self.model.bs_params_and_grads() {
            let n = p.data().len();
            p.data_mut().copy_from_slice(&ck.params[at..at + n]);
            at += n;
        }
        self.opt_ue
            .restore_state(ck.opt_ue.0, &ck.opt_ue.1, &ck.opt_ue.2, &ue_dims)
            .map_err(CheckpointError::Mismatch)?;
        self.opt_bs
            .restore_state(ck.opt_bs.0, &ck.opt_bs.1, &ck.opt_bs.2, &bs_dims)
            .map_err(CheckpointError::Mismatch)?;
        self.clock = SimClock::from_parts(ck.compute_s, ck.airtime_s);
        self.steps_seen = ck.steps_seen;
        // Fast-forward the freshly-seeded generator past the draws the
        // original run had consumed (model init included — a fresh
        // trainer has already replayed those).
        self.rng
            .advance_to(ck.rng_n32, ck.rng_n64)
            .map_err(CheckpointError::Mismatch)?;
        let epoch = ck.epoch;
        self.resume = Some(ResumeState {
            epoch,
            steps_applied: ck.steps_applied,
            steps_voided: ck.steps_voided,
            consecutive_voids: ck.consecutive_voids,
            curve: ck.curve,
        });
        Ok(epoch)
    }

    /// Commits the full trainer state after `epoch` into `dir`.
    fn write_checkpoint(
        &mut self,
        dir: &Path,
        epoch: usize,
        steps_applied: u64,
        steps_voided: u64,
        consecutive_voids: usize,
        curve: &[CurvePoint],
    ) -> Result<(), CheckpointError> {
        if self.rng.fills() > 0 {
            return Err(CheckpointError::Unsupported(
                "byte-fill RNG draws are not replayable from call counts",
            ));
        }
        let (rng_n32, rng_n64) = self.rng.words();
        let mut params = Vec::new();
        for (p, _) in self.model.ue_params_and_grads() {
            params.extend_from_slice(p.data());
        }
        for (p, _) in self.model.bs_params_and_grads() {
            params.extend_from_slice(p.data());
        }
        let ck = TrainCheckpoint {
            scheme: self.config.scheme.to_string(),
            pooling: self.config.pooling.to_string(),
            seed: self.config.seed,
            epoch,
            steps_applied,
            steps_voided,
            consecutive_voids,
            steps_seen: self.steps_seen,
            rng_n32,
            rng_n64,
            opt_ue: self.opt_ue.export_state(),
            opt_bs: self.opt_bs.export_state(),
            compute_s: self.clock.compute_s(),
            airtime_s: self.clock.airtime_s(),
            curve: curve.to_vec(),
            params,
        };
        checkpoint::save(dir, &ck, &mut self.store_metrics)
    }

    /// Runs the full training loop (validating after every epoch, like
    /// the paper) and returns the outcome. Telemetry-free entry point;
    /// see [`SplitTrainer::train_with`] for the instrumented one.
    pub fn train(&mut self, dataset: &SequenceDataset) -> TrainOutcome {
        self.train_with(dataset, &mut Telemetry::disabled())
    }

    /// Runs the full training loop, recording metrics and journal events
    /// into `tele`:
    ///
    /// * per step — `train.loss`, `train.grad_norm.{ue,bs}`,
    ///   `train.step.{host_s,compute_s,airtime_s}` and `train.model.host_s`
    ///   histograms, plus the `train.steps.{applied,voided}` and
    ///   `train.nonfinite.{loss,grad}` counters;
    /// * per layer — host-time/FLOP/parameter stats under
    ///   `nn.{ue,bs}.layer.<idx>.<name>.*` (profiling is enabled for the
    ///   whole run whenever `tele` is enabled);
    /// * health — a `health.diverged` event if the [`HealthMonitor`]
    ///   trips (under `SLM_HEALTH=abort` the run then stops with
    ///   [`StopReason::HealthAborted`]);
    /// * per epoch — an `"epoch"` event plus the `train.val_rmse_db`
    ///   gauge;
    /// * at the end — the uplink/downlink slot metrics
    ///   (`train.uplink.*` / `train.downlink.*`), the accumulated
    ///   `sim.compute_s` / `sim.airtime_s` gauges (exactly the
    ///   [`SimClock`] totals), and a `"train_end"` event.
    ///
    /// With disabled telemetry every instrumentation point reduces to one
    /// branch, so the uninstrumented hot path is unchanged.
    pub fn train_with(&mut self, dataset: &SequenceDataset, tele: &mut Telemetry) -> TrainOutcome {
        let b = self.config.batch_size;
        let steps_per_epoch = dataset.steps_per_epoch(b);
        let mut curve = Vec::new();
        let mut steps_applied = 0u64;
        let mut steps_voided = 0u64;
        let mut consecutive_voids = 0usize;
        let mut start_epoch = 1usize;
        if let Some(r) = self.resume.take() {
            // Checkpoint restore: the curve already holds every completed
            // epoch's point, and the counters (including the live void
            // streak) continue where the interrupted run stopped.
            curve = r.curve;
            steps_applied = r.steps_applied;
            steps_voided = r.steps_voided;
            consecutive_voids = r.consecutive_voids;
            start_epoch = r.epoch + 1;
        }
        if tele.is_enabled() {
            // Per-layer profiling rides along with telemetry: every layer
            // forward/backward below lands in `nn.{ue,bs}.layer.*`.
            self.model.enable_profiling();
        }
        if tele.trace_enabled() && self.tracer.is_none() {
            // Deterministic trace id: derived from the run's identity,
            // never from wall-clock or ambient randomness (DESIGN.md §9).
            self.tracer = Some(Tracer::for_run(
                &format!(
                    "{}|{}|seed={}",
                    self.config.scheme, self.config.pooling, self.config.seed
                ),
                "ue",
            ));
        }

        // Epoch-0 point: the untrained model (skipped on resume — the
        // restored curve already has it).
        let mut val = if start_epoch == 1 {
            let v = self.validate_with(dataset, tele);
            curve.push(CurvePoint {
                elapsed_s: self.clock.elapsed_s(),
                epoch: 0,
                val_rmse_db: v,
            });
            v
        } else {
            curve.last().map(|p| p.val_rmse_db).unwrap_or(f32::INFINITY)
        };

        let mut stop = StopReason::EpochLimit;
        let mut epochs = start_epoch - 1;
        // Resuming a run that had already reached its target trains no
        // further (the empty range below).
        let last_epoch = if start_epoch > 1 && val <= self.config.target_rmse_db {
            stop = StopReason::TargetReached;
            epochs
        } else {
            self.config.max_epochs
        };
        'outer: for epoch in start_epoch..=last_epoch {
            for _ in 0..steps_per_epoch {
                match self.step(dataset, b, tele) {
                    StepResult::Applied => {
                        steps_applied += 1;
                        consecutive_voids = 0;
                    }
                    StepResult::Voided => {
                        steps_voided += 1;
                        consecutive_voids += 1;
                        if consecutive_voids >= self.config.stall_limit {
                            stop = StopReason::LinkStalled;
                            epochs = epoch;
                            break 'outer;
                        }
                    }
                    StepResult::HealthAborted => {
                        // The update was applied before the watchdog
                        // tripped; the run stops here with a report.
                        steps_applied += 1;
                        stop = StopReason::HealthAborted;
                        epochs = epoch;
                        break 'outer;
                    }
                }
            }
            epochs = epoch;
            val = self.validate_with(dataset, tele);
            curve.push(CurvePoint {
                elapsed_s: self.clock.elapsed_s(),
                epoch,
                val_rmse_db: val,
            });
            if tele.is_enabled() {
                tele.gauge_set("train.val_rmse_db", val as f64);
                // Every epoch lands in the series (no step-cadence
                // gating): validation points are rare and each one is a
                // curve point worth keeping.
                tele.series_point("train.val_rmse_db", self.clock.elapsed_s(), f64::from(val));
                tele.emit(
                    EventBuilder::new("epoch")
                        .u64("epoch", epoch as u64)
                        .f64("val_rmse_db", val as f64)
                        .f64("elapsed_s", self.clock.elapsed_s())
                        .f64("compute_s", self.clock.compute_s())
                        .f64("airtime_s", self.clock.airtime_s())
                        .u64("steps_applied", steps_applied)
                        .u64("steps_voided", steps_voided),
                );
            }
            // Flush the epoch's spans to the journal as we go so a
            // crashed run still leaves a usable partial trace.
            if tele.trace_enabled() {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.drain_into(tele);
                }
            }
            // Commit the epoch's full state before the stop decision so
            // even a target-reaching final epoch leaves a checkpoint. A
            // failed save warns and trains on: checkpointing must never
            // kill the run it protects.
            if let Some(dir) = self.checkpoint_dir.take() {
                if let Err(e) = self.write_checkpoint(
                    &dir,
                    epoch,
                    steps_applied,
                    steps_voided,
                    consecutive_voids,
                    &curve,
                ) {
                    tele.warn(&format!("checkpoint save to {} failed: {e}", dir.display()));
                }
                self.checkpoint_dir = Some(dir);
            }
            if val <= self.config.target_rmse_db {
                stop = StopReason::TargetReached;
                break;
            }
        }

        if tele.is_enabled() {
            self.model.publish_profiles(tele);
            self.model.disable_profiling();
            // Compute-backend counters (thread pool, per-kernel host time)
            // so reports can relate throughput to `SLM_THREADS`.
            sl_tensor::ComputePool::global().publish_metrics(tele);
            tele.add("train.steps.applied", steps_applied);
            tele.add("train.steps.voided", steps_voided);
            // The simulated-clock split, accumulated across runs so a
            // multi-experiment process sums to its total simulated time.
            tele.gauge_add("sim.compute_s", self.clock.compute_s());
            tele.gauge_add("sim.airtime_s", self.clock.airtime_s());
            self.uplink.publish_metrics(tele, "train.uplink");
            self.downlink.publish_metrics(tele, "train.downlink");
            // Store-layer counters (checkpoint saves, activation-log
            // appends) drain into `store.*`.
            self.store_metrics.publish(tele);
            tele.emit(
                EventBuilder::new("train_end")
                    .str("scheme", &self.config.scheme.to_string())
                    .str("pooling", &self.config.pooling.to_string())
                    .str("stop", &format!("{stop:?}"))
                    .u64("epochs", epochs as u64)
                    .u64("steps_applied", steps_applied)
                    .u64("steps_voided", steps_voided)
                    .f64("final_rmse_db", val as f64)
                    .f64("compute_s", self.clock.compute_s())
                    .f64("airtime_s", self.clock.airtime_s()),
            );
        }
        if tele.trace_enabled() {
            if let Some(tr) = self.tracer.as_mut() {
                tr.drain_into(tele);
            }
        }

        TrainOutcome {
            curve,
            stop,
            final_rmse_db: val,
            epochs,
            steps_applied,
            steps_voided,
            compute_s: self.clock.compute_s(),
            airtime_s: self.clock.airtime_s(),
        }
    }

    /// One SGD step: transfers, compute, updates, clock.
    fn step(&mut self, dataset: &SequenceDataset, b: usize, tele: &mut Telemetry) -> StepResult {
        let instrument = tele.is_enabled();
        let host = instrument.then(Stopwatch::start);
        let span = SimSpan::begin(self.clock.compute_s(), self.clock.airtime_s());

        let result = self.step_inner(dataset, b, tele);

        if instrument {
            if let Some(host) = host {
                host.observe(tele, "train.step");
            }
            span.observe(
                tele,
                "train.step",
                self.clock.compute_s(),
                self.clock.airtime_s(),
            );
        }
        result
    }

    fn step_inner(
        &mut self,
        dataset: &SequenceDataset,
        b: usize,
        tele: &mut Telemetry,
    ) -> StepResult {
        let label = self.session_label();
        let cfg = &self.config;
        let uses_images = cfg.scheme.uses_images();
        self.steps_seen += 1;
        let seq = self.steps_seen;

        // UE forward compute happens regardless of link fate. The
        // simulated timestamps `t0..t4` bracket the step's windows for
        // tracing.
        let t0 = sim_us(self.clock.elapsed_s());
        self.clock
            .add_compute(cfg.compute.ue_seconds(self.model.ue_step_flops(b)));
        let t1 = sim_us(self.clock.elapsed_s());

        let mut ul_stats: Option<(u64, u64)> = None;
        if uses_images {
            // Uplink: quantized activations.
            let ul_bits = self.model.uplink_payload_bits(b);
            let out = self.uplink.transfer(ul_bits, &mut self.rng);
            self.clock
                .add_airtime(self.uplink.slots_to_seconds(out.slots()));
            if !out.delivered() {
                if let Some(tr) = self.tracer.as_mut() {
                    let tv = sim_us(self.clock.elapsed_s());
                    let root = tr.begin("train.step", "step", t0);
                    tr.record("ue.forward", "ue", t0, t1 - t0, Vec::new());
                    tr.record(
                        "uplink.transfer",
                        "link",
                        t1,
                        tv - t1,
                        vec![
                            ("bits".into(), Value::U64(ul_bits)),
                            ("slots".into(), Value::U64(out.slots())),
                            ("delivered".into(), Value::Bool(false)),
                        ],
                    );
                    tr.end_with(
                        root,
                        tv,
                        vec![
                            ("step".into(), Value::U64(seq)),
                            ("voided".into(), Value::Bool(true)),
                            ("session".into(), Value::Str(label)),
                        ],
                    );
                }
                return StepResult::Voided;
            }
            ul_stats = Some((ul_bits, out.slots()));
        }
        let t2 = sim_us(self.clock.elapsed_s());

        // BS compute: forward + loss + backward.
        self.clock
            .add_compute(cfg.compute.bs_seconds(self.model.bs_step_flops(b)));
        let t3 = sim_us(self.clock.elapsed_s());

        let mut dl_stats: Option<(u64, u64)> = None;
        if uses_images {
            // Downlink: cut-layer gradients.
            let dl_bits = self.model.downlink_payload_bits(b);
            let out = self.downlink.transfer(dl_bits, &mut self.rng);
            self.clock
                .add_airtime(self.downlink.slots_to_seconds(out.slots()));
            if !out.delivered() {
                if let Some(tr) = self.tracer.as_mut() {
                    let tv = sim_us(self.clock.elapsed_s());
                    let root = tr.begin("train.step", "step", t0);
                    tr.record("ue.forward", "ue", t0, t1 - t0, Vec::new());
                    if let Some((bits, slots)) = ul_stats {
                        tr.record(
                            "uplink.transfer",
                            "link",
                            t1,
                            t2 - t1,
                            vec![
                                ("bits".into(), Value::U64(bits)),
                                ("slots".into(), Value::U64(slots)),
                            ],
                        );
                    }
                    tr.record("bs.compute", "bs", t2, t3 - t2, Vec::new());
                    tr.record(
                        "downlink.transfer",
                        "link",
                        t3,
                        tv - t3,
                        vec![
                            ("bits".into(), Value::U64(dl_bits)),
                            ("slots".into(), Value::U64(out.slots())),
                            ("delivered".into(), Value::Bool(false)),
                        ],
                    );
                    tr.end_with(
                        root,
                        tv,
                        vec![
                            ("step".into(), Value::U64(seq)),
                            ("voided".into(), Value::Bool(true)),
                            ("session".into(), Value::Str(label)),
                        ],
                    );
                }
                return StepResult::Voided;
            }
            dl_stats = Some((dl_bits, out.slots()));
        }
        let t4 = sim_us(self.clock.elapsed_s());

        // Record the delivered step's window spans (every window is
        // already charged; the numerics below are instantaneous on the
        // simulated clock, so they appear as zero-width markers at t4).
        let mut open_root = None;
        if let Some(tr) = self.tracer.as_mut() {
            let root = tr.begin("train.step", "step", t0);
            tr.record("ue.forward", "ue", t0, t1 - t0, Vec::new());
            tr.record(
                "quantize.pack",
                "ue",
                t1,
                0,
                vec![("bit_depth".into(), Value::U64(cfg.bit_depth as u64))],
            );
            if let Some((bits, slots)) = ul_stats {
                tr.record(
                    "uplink.transfer",
                    "link",
                    t1,
                    t2 - t1,
                    vec![
                        ("bits".into(), Value::U64(bits)),
                        ("slots".into(), Value::U64(slots)),
                    ],
                );
            }
            tr.record("bs.compute", "bs", t2, t3 - t2, Vec::new());
            if let Some((bits, slots)) = dl_stats {
                tr.record(
                    "downlink.transfer",
                    "link",
                    t3,
                    t4 - t3,
                    vec![
                        ("bits".into(), Value::U64(bits)),
                        ("slots".into(), Value::U64(slots)),
                    ],
                );
            }
            open_root = Some(root);
        }

        // The actual numerics (instantaneous with respect to the
        // simulated clock — their cost is what the FLOP model charged).
        let instrument = tele.is_enabled();
        let idx = dataset.sample_train_batch(b, &mut self.rng);
        let batch = Batch::assemble(dataset, dataset.normalizer(), &idx, uses_images);
        let fwd = instrument.then(Stopwatch::start);
        let pred = if self.activation_log.is_some() {
            // Same composition as `SplitModel::forward`, intercepting the
            // quantized cut-layer activations — exactly the values that
            // cross the air — for the append-only audit log.
            let cut = self.model.forward_ue(&batch);
            if let (Some(log), Some(cut)) = (self.activation_log.as_mut(), cut.as_ref()) {
                if let Err(e) = log.append(cut.data(), &mut self.store_metrics) {
                    tele.warn(&format!("activation log append failed: {e}"));
                }
            }
            self.model
                .forward_bs(cut.as_ref(), &batch.powers_norm, b, batch.seq_len)
        } else {
            self.model.forward(&batch)
        };
        if let Some(w) = fwd {
            w.observe(tele, "train.model");
        }
        let loss = mse_loss(&pred, &batch.targets_norm);
        let bwd = instrument.then(Stopwatch::start);
        self.model.backward(&loss.grad);
        if let Some(w) = bwd {
            w.observe(tele, "train.model");
        }

        let clip = self.config.grad_clip;
        let ue_norm;
        let bs_norm;
        {
            let mut pairs = self.model.ue_params_and_grads();
            let mut grads: Vec<&mut Tensor> = pairs.iter_mut().map(|(_, g)| &mut **g).collect();
            ue_norm = clip_global_norm(&mut grads, clip);
        }
        {
            let mut pairs = self.model.bs_params_and_grads();
            let mut grads: Vec<&mut Tensor> = pairs.iter_mut().map(|(_, g)| &mut **g).collect();
            bs_norm = clip_global_norm(&mut grads, clip);
        }
        if instrument {
            if loss.loss.is_finite() {
                tele.observe("train.loss", loss.loss.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.loss");
            }
            if ue_norm.is_finite() {
                tele.observe("train.grad_norm.ue", ue_norm.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.grad");
            }
            if bs_norm.is_finite() {
                tele.observe("train.grad_norm.bs", bs_norm.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.grad");
            }
            // Time-series sampling keys on the step counter and stamps
            // the *simulated* clock, so two runs emit byte-identical
            // series regardless of wall clock or SLM_THREADS.
            if tele.should_sample(seq) && loss.loss.is_finite() {
                tele.series_point(
                    "train.loss",
                    self.clock.elapsed_s(),
                    f64::from(loss.loss.max(0.0)),
                );
            }
        }

        // Snapshot parameters before the optimizer steps so the watchdog
        // can see the per-step update ratio ‖Δθ‖/‖θ‖.
        let track_ratio = self.health.wants_update_ratio();
        let prev_ue: Option<Vec<Tensor>> = track_ratio.then(|| {
            self.model
                .ue_params_and_grads()
                .iter()
                .map(|(p, _)| (**p).clone())
                .collect()
        });
        let prev_bs: Option<Vec<Tensor>> = track_ratio.then(|| {
            self.model
                .bs_params_and_grads()
                .iter()
                .map(|(p, _)| (**p).clone())
                .collect()
        });
        self.opt_ue.step(&mut self.model.ue_params_and_grads());
        self.opt_bs.step(&mut self.model.bs_params_and_grads());
        self.model.zero_grads();

        if let (Some(tr), Some(root)) = (self.tracer.as_mut(), open_root) {
            tr.record("model.forward", "ue", t4, 0, Vec::new());
            tr.record("model.backward", "ue", t4, 0, Vec::new());
            tr.record("opt.apply", "ue", t4, 0, Vec::new());
            tr.end_with(
                root,
                t4,
                vec![
                    ("step".into(), Value::U64(seq)),
                    ("loss".into(), Value::F64(f64::from(loss.loss))),
                    ("voided".into(), Value::Bool(false)),
                    ("session".into(), Value::Str(label)),
                ],
            );
        }

        if self.health.config().action != HealthAction::Off && !self.health.tripped() {
            let ratio_ue = prev_ue
                .map(|prev| update_ratio(&prev, &self.model.ue_params_and_grads()))
                .unwrap_or(0.0);
            let ratio_bs = prev_bs
                .map(|prev| update_ratio(&prev, &self.model.bs_params_and_grads()))
                .unwrap_or(0.0);
            let stats = StepStats {
                loss: loss.loss as f64,
                grad_norm_ue: ue_norm as f64,
                grad_norm_bs: bs_norm as f64,
                update_ratio_ue: ratio_ue,
                update_ratio_bs: ratio_bs,
            };
            if let Some(verdict) = self.health.observe_step(stats) {
                let action = self.health.config().action;
                if tele.is_enabled() {
                    tele.emit(
                        EventBuilder::new("health.diverged")
                            .str("metric", verdict.metric())
                            .str("detail", &verdict.to_string())
                            .str(
                                "action",
                                if action == HealthAction::Abort {
                                    "abort"
                                } else {
                                    "warn"
                                },
                            )
                            .u64("nonfinite_loss", self.health.nonfinite_loss())
                            .u64("nonfinite_grad", self.health.nonfinite_grad()),
                    );
                }
                tele.warn(&format!("health watchdog tripped: {verdict}"));
                tele.warn(&self.health.report());
                if action == HealthAction::Abort {
                    return StepResult::HealthAborted;
                }
            }
        }
        StepResult::Applied
    }

    /// Validation RMSE in dB over the (possibly subsampled) validation
    /// set. Does not advance the simulated clock (the paper's elapsed
    /// axis measures training, and validation can run concurrently at the
    /// BS).
    pub fn validate(&mut self, dataset: &SequenceDataset) -> f32 {
        self.validate_with(dataset, &mut Telemetry::disabled())
    }

    /// [`SplitTrainer::validate`] with the validation forwards timed into
    /// `train.model.host_s` (so profiled runs account for every model
    /// invocation, not just training steps).
    fn validate_with(&mut self, dataset: &SequenceDataset, tele: &mut Telemetry) -> f32 {
        let indices = subsample(dataset.val_indices(), self.config.val_subsample);
        self.rmse_over_with(dataset, &indices, tele)
    }

    /// RMSE (dB) over arbitrary dataset indices.
    pub fn rmse_over(&mut self, dataset: &SequenceDataset, indices: &[usize]) -> f32 {
        self.rmse_over_with(dataset, indices, &mut Telemetry::disabled())
    }

    fn rmse_over_with(
        &mut self,
        dataset: &SequenceDataset,
        indices: &[usize],
        tele: &mut Telemetry,
    ) -> f32 {
        assert!(!indices.is_empty(), "rmse_over: no indices");
        let normalizer = dataset.normalizer();
        let uses_images = self.config.scheme.uses_images();
        let mut preds = Vec::with_capacity(indices.len());
        let mut targets = Vec::with_capacity(indices.len());
        for chunk in indices.chunks(128) {
            let batch = Batch::assemble(dataset, normalizer, chunk, uses_images);
            let watch = tele.is_enabled().then(Stopwatch::start);
            let p = self.model.forward(&batch);
            if let Some(w) = watch {
                w.observe(tele, "train.model");
            }
            preds.extend_from_slice(p.data());
            targets.extend_from_slice(batch.targets_norm.data());
        }
        let r = rmse(&Tensor::from_slice(&preds), &Tensor::from_slice(&targets));
        normalizer.rmse_to_db(r)
    }

    /// Predicts over `count` consecutive validation samples starting at
    /// validation offset `offset` — the Fig. 3b trace.
    pub fn predict_trace(
        &mut self,
        dataset: &SequenceDataset,
        offset: usize,
        count: usize,
    ) -> Vec<PredictionPoint> {
        let val = dataset.val_indices();
        assert!(
            offset + count <= val.len(),
            "predict_trace: window [{offset}, {}) exceeds validation set of {}",
            offset + count,
            val.len()
        );
        let indices: Vec<usize> = val[offset..offset + count].to_vec();
        let normalizer = dataset.normalizer();
        let uses_images = self.config.scheme.uses_images();
        let horizon = dataset.horizon();
        let dt = dataset.trace().frame_interval_s;
        let mut out = Vec::with_capacity(count);
        for chunk in indices.chunks(128) {
            let batch = Batch::assemble(dataset, normalizer, chunk, uses_images);
            let p = self.model.forward(&batch);
            for (row, &k) in chunk.iter().enumerate() {
                let target_index = k + horizon;
                out.push(PredictionPoint {
                    index: target_index,
                    time_s: target_index as f64 * dt,
                    predicted_dbm: normalizer.denormalize(p.at(&[row, 0])),
                    actual_dbm: dataset.trace().powers_dbm[target_index],
                });
            }
        }
        out
    }
}

enum StepResult {
    Applied,
    Voided,
    HealthAborted,
}

/// `‖θ_new − θ_old‖ / ‖θ_old‖` across a parameter list (the classic
/// update-ratio health signal; ~1e-3 is healthy, ≫1 is divergence).
/// Public so the networked runtime (`sl-net`) can feed the same
/// [`HealthMonitor`] statistics from either side of the socket.
pub fn update_ratio(prev: &[Tensor], pairs: &[(&mut Tensor, &mut Tensor)]) -> f64 {
    let mut delta_sq = 0.0f64;
    let mut norm_sq = 0.0f64;
    for (old, (new, _)) in prev.iter().zip(pairs) {
        for (a, b) in old.data().iter().zip(new.data()) {
            let d = (*b - *a) as f64;
            delta_sq += d * d;
            norm_sq += (*a as f64) * (*a as f64);
        }
    }
    delta_sq.sqrt() / (norm_sq.sqrt() + 1e-12)
}

/// Deterministic stride subsample of `indices` down to at most `cap` —
/// the validation-set thinning used by every trainer (in-process and
/// networked), public so both pick identical samples.
pub fn subsample(indices: &[usize], cap: Option<usize>) -> Vec<usize> {
    match cap {
        Some(cap) if indices.len() > cap => {
            let stride = indices.len() as f64 / cap as f64;
            (0..cap)
                .map(|i| indices[(i as f64 * stride) as usize])
                .collect()
        }
        _ => indices.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooling::PoolingDim;
    use crate::scheme::Scheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_scene::{Scene, SceneConfig};

    fn dataset(seed: u64) -> SequenceDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
        SequenceDataset::paper_windowing(scene.simulate(&mut rng))
    }

    #[test]
    fn rf_only_trains_without_airtime() {
        let ds = dataset(70);
        let cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
        let mut t = SplitTrainer::new(cfg, &ds);
        let out = t.train(&ds);
        assert_eq!(out.airtime_s, 0.0, "RF-only must not touch the channel");
        assert!(out.compute_s > 0.0);
        assert_eq!(out.steps_voided, 0);
        assert!(out.steps_applied > 0);
        assert_eq!(out.stop, StopReason::EpochLimit);
        assert_eq!(out.epochs, 3);
        // Curve: epoch 0 + one point per epoch.
        assert_eq!(out.curve.len(), 4);
        assert!(out
            .curve
            .windows(2)
            .all(|w| w[0].elapsed_s <= w[1].elapsed_s));
    }

    #[test]
    fn training_improves_over_untrained_baseline() {
        let ds = dataset(71);
        let mut cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
        cfg.max_epochs = 8;
        let mut t = SplitTrainer::new(cfg, &ds);
        let out = t.train(&ds);
        let first = out.curve[0].val_rmse_db;
        let best = out.best_rmse_db();
        assert!(
            best < first,
            "training never improved: start {first} dB, best {best} dB"
        );
    }

    #[test]
    fn img_rf_accrues_airtime() {
        let ds = dataset(72);
        let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
        let mut t = SplitTrainer::new(cfg, &ds);
        let out = t.train(&ds);
        assert!(out.airtime_s > 0.0, "split schemes must pay airtime");
        assert!(out.steps_applied > 0);
    }

    #[test]
    fn oversized_payload_stalls_the_link() {
        let ds = dataset(73);
        // 1×1 pooling on a deeply-faded link: per-slot success ≈ 0 ->
        // every step times out -> LinkStalled almost immediately. (The
        // tiny 16×16 test scene's raw payload is small enough to decode
        // on the real link, so drive the SNR down instead.)
        let mut cfg = ExperimentConfig::quick(Scheme::ImgOnly, PoolingDim::RAW);
        cfg.uplink = sl_channel::LinkConfig::paper_uplink().with_mean_snr_db(-30.0);
        cfg.retransmission = sl_channel::RetransmissionPolicy::WholePayload { max_slots: 20 };
        cfg.stall_limit = 3;
        let mut t = SplitTrainer::new(cfg, &ds);
        let out = t.train(&ds);
        assert_eq!(out.stop, StopReason::LinkStalled);
        assert_eq!(out.steps_applied, 0);
        assert_eq!(out.steps_voided, 3);
    }

    #[test]
    fn target_rmse_stops_early() {
        let ds = dataset(74);
        let mut cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
        // An unreachable-low bar never stops; a huge bar stops at epoch 1.
        cfg.target_rmse_db = 1e6;
        cfg.max_epochs = 5;
        let mut t = SplitTrainer::new(cfg, &ds);
        let out = t.train(&ds);
        assert_eq!(out.stop, StopReason::TargetReached);
        assert_eq!(out.epochs, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(75);
        let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
        let out1 = SplitTrainer::new(cfg.clone(), &ds).train(&ds);
        let out2 = SplitTrainer::new(cfg, &ds).train(&ds);
        assert_eq!(out1.curve, out2.curve);
        assert_eq!(out1.steps_applied, out2.steps_applied);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run_bitwise() {
        let ds = dataset(79);
        let mut cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
        cfg.max_epochs = 4;
        let dir = std::env::temp_dir().join("slm_trainer_resume_test");
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference run.
        let full = SplitTrainer::new(cfg.clone(), &ds).train(&ds);
        assert!(full.steps_applied > 0);

        // Interrupted run: checkpoint every epoch, stop after 2.
        let mut short_cfg = cfg.clone();
        short_cfg.max_epochs = 2;
        let mut first = SplitTrainer::new(short_cfg, &ds);
        first.set_checkpoint_dir(&dir);
        let partial = first.train(&ds);
        assert_eq!(partial.epochs, 2);

        // Fresh trainer resumes from the saved state and finishes.
        let mut resumed = SplitTrainer::new(cfg.clone(), &ds);
        let at = resumed.resume_from_checkpoint(&dir).unwrap();
        assert_eq!(at, 2);
        let out = resumed.train(&ds);

        assert_eq!(out.curve, full.curve, "resumed curve diverged");
        assert_eq!(out.steps_applied, full.steps_applied);
        assert_eq!(out.steps_voided, full.steps_voided);
        assert_eq!(out.compute_s.to_bits(), full.compute_s.to_bits());
        assert_eq!(out.airtime_s.to_bits(), full.airtime_s.to_bits());
        assert_eq!(out.stop, full.stop);

        // A mismatched config is a typed error, not silent divergence.
        let mut other = SplitTrainer::new(
            ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(4, 4)),
            &ds,
        );
        assert!(matches!(
            other.resume_from_checkpoint(&dir),
            Err(CheckpointError::Mismatch(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn activation_log_captures_cut_activations_without_perturbing_training() {
        let ds = dataset(80);
        let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
        let plain = SplitTrainer::new(cfg.clone(), &ds).train(&ds);

        let dir = std::env::temp_dir().join("slm_trainer_actlog_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = SplitTrainer::new(cfg.clone(), &ds);
        let storage = sl_store::DirStorage::create(&dir).unwrap();
        let frame = &ds.trace().frames[0];
        let item_len = cfg.batch_size
            * ds.seq_len()
            * cfg.pooling.output_pixels(frame.dims()[0], frame.dims()[1]);
        let log = ActivationLog::create(
            storage,
            "activations",
            item_len,
            sl_store::Codec::Bitpack {
                bit_depth: cfg.bit_depth,
            },
        )
        .unwrap();
        t.set_activation_log(log);
        let logged = t.train(&ds);

        // The forward split must be numerically invisible.
        assert_eq!(plain.curve, logged.curve);
        assert_eq!(plain.steps_applied, logged.steps_applied);

        // One appended item per applied step. Every append survived the
        // bitpack codec, so the values are certified on the R-bit grid —
        // read them back losslessly.
        let log = t.take_activation_log().unwrap();
        assert_eq!(log.items() as u64, logged.steps_applied);
        assert_eq!(t.store_metrics().log_appends, logged.steps_applied);
        let mut metrics = StoreMetrics::default();
        let values = log
            .read_all(sl_tensor::ComputePool::global(), &mut metrics)
            .unwrap();
        assert_eq!(values.len(), item_len * log.items());
        assert!(values.iter().all(|v| (0.0..=1.0).contains(v)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn predict_trace_is_aligned_with_ground_truth() {
        let ds = dataset(76);
        let cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
        let mut t = SplitTrainer::new(cfg, &ds);
        let _ = t.train(&ds);
        let trace = t.predict_trace(&ds, 5, 20);
        assert_eq!(trace.len(), 20);
        for p in &trace {
            assert_eq!(p.actual_dbm, ds.trace().powers_dbm[p.index]);
            assert!(p.predicted_dbm.is_finite());
            assert!((p.time_s - p.index as f64 * 0.033).abs() < 1e-9);
        }
        // Points advance in time.
        assert!(trace.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn telemetry_agrees_with_outcome_and_clock() {
        use sl_telemetry::{MemorySink, Telemetry, TelemetryMode};
        let ds = dataset(77);
        let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        let mut t = SplitTrainer::new(cfg, &ds);
        let out = t.train_with(&ds, &mut tele);
        let snap = tele.snapshot();

        assert_eq!(snap.counter("train.steps.applied"), out.steps_applied);
        assert_eq!(snap.counter("train.steps.voided"), out.steps_voided);
        // The acceptance bar: snapshot sim totals equal the SimClock.
        assert!((snap.gauge("sim.compute_s").unwrap() - out.compute_s).abs() < 1e-9);
        assert!((snap.gauge("sim.airtime_s").unwrap() - out.airtime_s).abs() < 1e-9);
        // Per-step sim spans partition the clock exactly.
        assert!((snap.histograms["train.step.compute_s"].sum() - out.compute_s).abs() < 1e-9);
        assert!((snap.histograms["train.step.airtime_s"].sum() - out.airtime_s).abs() < 1e-9);
        // One loss/grad-norm sample per applied step; one host-time sample
        // per attempted step.
        assert_eq!(snap.histograms["train.loss"].count(), out.steps_applied);
        assert_eq!(
            snap.histograms["train.grad_norm.bs"].count(),
            out.steps_applied
        );
        assert_eq!(
            snap.histograms["train.step.host_s"].count(),
            out.steps_applied + out.steps_voided
        );
        // The split scheme used both link directions.
        assert_eq!(
            snap.counter("train.uplink.transfers"),
            out.steps_applied + out.steps_voided
        );
        assert!(snap.counter("train.downlink.transfers") > 0);

        // Journal: one epoch event per epoch, then a train_end.
        let evs = events.borrow();
        assert_eq!(evs.iter().filter(|e| e.kind == "epoch").count(), out.epochs);
        assert_eq!(evs.iter().filter(|e| e.kind == "train_end").count(), 1);
    }

    #[test]
    fn telemetry_does_not_perturb_training() {
        let ds = dataset(78);
        let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
        let plain = SplitTrainer::new(cfg.clone(), &ds).train(&ds);
        let mut tele = sl_telemetry::Telemetry::summary();
        let instrumented = SplitTrainer::new(cfg, &ds).train_with(&ds, &mut tele);
        assert_eq!(plain.curve, instrumented.curve);
        assert_eq!(plain.steps_applied, instrumented.steps_applied);
        assert_eq!(plain.compute_s, instrumented.compute_s);
        assert_eq!(plain.airtime_s, instrumented.airtime_s);
    }

    #[test]
    fn time_to_rmse_reads_curve() {
        let out = TrainOutcome {
            curve: vec![
                CurvePoint {
                    elapsed_s: 0.0,
                    epoch: 0,
                    val_rmse_db: 9.0,
                },
                CurvePoint {
                    elapsed_s: 1.0,
                    epoch: 1,
                    val_rmse_db: 5.0,
                },
                CurvePoint {
                    elapsed_s: 2.0,
                    epoch: 2,
                    val_rmse_db: 2.0,
                },
            ],
            stop: StopReason::EpochLimit,
            final_rmse_db: 2.0,
            epochs: 2,
            steps_applied: 10,
            steps_voided: 0,
            compute_s: 1.5,
            airtime_s: 0.5,
        };
        assert_eq!(out.time_to_rmse(5.0), Some(1.0));
        assert_eq!(out.time_to_rmse(1.0), None);
        assert_eq!(out.best_rmse_db(), 2.0);
        assert!((out.elapsed_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subsample_is_deterministic_and_bounded() {
        let idx: Vec<usize> = (0..1000).collect();
        let s = subsample(&idx, Some(100));
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(subsample(&idx, None).len(), 1000);
        assert_eq!(subsample(&idx[..5], Some(100)).len(), 5);
    }
}
