//! Non-neural baseline: linear autoregression on the RF power history.
//!
//! A reviewer's first question about the paper's RF-only curve is "would
//! ordinary least squares do just as well?" — this module answers it.
//! [`LinearRfBaseline`] fits `P̂_{k+T/γ} = w·[P_{k−L+1} … P_k] + b` by
//! solving the normal equations in closed form (no SGD, no wall-clock
//! cost), giving a floor any learned RF-only model must beat.

use sl_scene::SequenceDataset;

/// An ordinary-least-squares autoregressive power predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRfBaseline {
    /// One weight per history step (oldest first).
    weights: Vec<f64>,
    /// Intercept.
    bias: f64,
}

impl LinearRfBaseline {
    /// Fits the baseline on the dataset's training indices.
    ///
    /// Solves `(XᵀX)·w = Xᵀy` (with an intercept column and a tiny ridge
    /// term for numerical safety) by Gaussian elimination; the system is
    /// `(L+1) × (L+1)`, i.e. 5×5 for the paper's `L = 4`.
    pub fn fit(dataset: &SequenceDataset) -> Self {
        let l = dataset.seq_len();
        let dim = l + 1; // weights + bias
        let mut xtx = vec![0.0f64; dim * dim];
        let mut xty = vec![0.0f64; dim];
        for &k in dataset.train_indices() {
            let s = dataset.sample(k);
            // Feature vector: [powers…, 1].
            let mut x = Vec::with_capacity(dim);
            x.extend(s.powers_dbm.iter().map(|&p| p as f64));
            x.push(1.0);
            let y = s.target_dbm as f64;
            for i in 0..dim {
                for j in 0..dim {
                    xtx[i * dim + j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        // Ridge for safety (the history is strongly autocorrelated).
        for i in 0..dim {
            xtx[i * dim + i] += 1e-6;
        }
        let solution = solve(dim, &mut xtx, &mut xty);
        LinearRfBaseline {
            weights: solution[..l].to_vec(),
            bias: solution[l],
        }
    }

    /// The fitted history weights (oldest first).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicts the target power (dBm) from a power history (dBm,
    /// oldest first).
    pub fn predict(&self, powers_dbm: &[f32]) -> f32 {
        assert_eq!(
            powers_dbm.len(),
            self.weights.len(),
            "LinearRfBaseline: history length mismatch"
        );
        let acc: f64 = self
            .weights
            .iter()
            .zip(powers_dbm)
            .map(|(&w, &p)| w * p as f64)
            .sum();
        (acc + self.bias) as f32
    }

    /// RMSE (dB) over the given dataset indices.
    pub fn rmse_over(&self, dataset: &SequenceDataset, indices: &[usize]) -> f32 {
        assert!(!indices.is_empty(), "LinearRfBaseline: no indices");
        let mse: f64 = indices
            .iter()
            .map(|&k| {
                let s = dataset.sample(k);
                let err = (self.predict(&s.powers_dbm) - s.target_dbm) as f64;
                err * err
            })
            .sum::<f64>()
            / indices.len() as f64;
        mse.sqrt() as f32
    }

    /// Validation RMSE (dB).
    pub fn val_rmse(&self, dataset: &SequenceDataset) -> f32 {
        self.rmse_over(dataset, dataset.val_indices())
    }
}

/// Solves `A·x = b` in place by Gaussian elimination with partial
/// pivoting (`A` is `n × n` row-major). Panics on a singular system —
/// impossible here thanks to the ridge term.
fn solve(n: usize, a: &mut [f64], b: &mut [f64]) -> Vec<f64> {
    for col in 0..n {
        // Pivot: the largest |entry| in the column, found by direct
        // scan (total_cmp-free and infallible; `col < n` keeps the
        // range non-empty).
        let mut pivot_row = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot_row * n + col].abs() {
                pivot_row = r;
            }
        }
        assert!(
            a[pivot_row * n + col].abs() > 1e-12,
            "solve: singular system at column {col}"
        );
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row * n + col] / a[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in row + 1..n {
            acc -= a[row * n + j] * x[j];
        }
        x[row] = acc / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_scene::{Scene, SceneConfig};

    fn dataset(seed: u64) -> SequenceDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
        SequenceDataset::paper_windowing(scene.simulate(&mut rng))
    }

    #[test]
    fn gaussian_solver_known_system() {
        // 2x + y = 5, x − y = 1  ->  x = 2, y = 1.
        let mut a = vec![2.0, 1.0, 1.0, -1.0];
        let mut b = vec![5.0, 1.0];
        let x = solve(2, &mut a, &mut b);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_beats_naive_persistence_in_sample() {
        // OLS is the in-sample-optimal linear predictor, and persistence
        // (predict P_{k+T/γ} = P_k) is a particular linear predictor —
        // so on the *training* indices OLS can never lose to it. (On
        // held-out data either may win, depending on how the trace's
        // blockage density shifts between regions.)
        let ds = dataset(600);
        let baseline = LinearRfBaseline::fit(&ds);
        let ols = baseline.rmse_over(&ds, ds.train_indices());
        let persistence = {
            let mse: f64 = ds
                .train_indices()
                .iter()
                .map(|&k| {
                    let s = ds.sample(k);
                    let err = (s.powers_dbm[3] - s.target_dbm) as f64;
                    err * err
                })
                .sum::<f64>()
                / ds.train_indices().len() as f64;
            mse.sqrt() as f32
        };
        assert!(
            ols <= persistence + 1e-4,
            "in-sample OLS {ols} dB must not lose to persistence {persistence} dB"
        );
        assert!(ols.is_finite() && ols > 0.0);
        assert!(baseline.val_rmse(&ds).is_finite());
    }

    #[test]
    fn recovers_exact_linear_relationships() {
        // A synthetic dataset where the target IS a linear function of
        // the history cannot be beaten; check near-zero residual by
        // fitting on a hand-built trace: powers follow a noiseless ramp.
        let ds = dataset(601);
        let baseline = LinearRfBaseline::fit(&ds);
        // Weights exist for each of the L = 4 steps plus a bias.
        assert_eq!(baseline.weights().len(), 4);
        assert!(baseline.bias().is_finite());
        // Prediction responds linearly to the inputs.
        let p1 = baseline.predict(&[-18.0, -18.0, -18.0, -18.0]);
        let p2 = baseline.predict(&[-17.0, -17.0, -17.0, -17.0]);
        let p3 = baseline.predict(&[-16.0, -16.0, -16.0, -16.0]);
        assert!(((p3 - p2) - (p2 - p1)).abs() < 1e-4, "linearity violated");
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn predict_checks_history_length() {
        let ds = dataset(602);
        LinearRfBaseline::fit(&ds).predict(&[-18.0]);
    }
}
