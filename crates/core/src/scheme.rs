//! The three input schemes compared in the paper.

use std::fmt;

/// Which modalities feed the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The paper's proposal: depth-image features from the UE's CNN,
    /// shipped over the split link, concatenated with the RF received
    /// powers measured at the BS.
    ImgRf,
    /// Baseline 1: image features only (still split across the link).
    ImgOnly,
    /// Baseline 2: RF received powers only — no CNN, no split, no
    /// communication (the BS already holds the powers).
    RfOnly,
}

impl Scheme {
    /// All three schemes, proposal first.
    pub const ALL: [Scheme; 3] = [Scheme::ImgRf, Scheme::ImgOnly, Scheme::RfOnly];

    /// `true` when the scheme consumes depth images (and therefore incurs
    /// split-layer communication).
    pub fn uses_images(&self) -> bool {
        matches!(self, Scheme::ImgRf | Scheme::ImgOnly)
    }

    /// `true` when the scheme consumes the RF power history.
    pub fn uses_rf(&self) -> bool {
        matches!(self, Scheme::ImgRf | Scheme::RfOnly)
    }

    /// Per-time-step BS input feature count, given the pooled image
    /// feature count.
    pub fn feature_dim(&self, pooled_pixels: usize) -> usize {
        match self {
            Scheme::ImgRf => pooled_pixels + 1,
            Scheme::ImgOnly => pooled_pixels,
            Scheme::RfOnly => 1,
        }
    }
}

/// The paper's labels: `Img+RF`, `Img`, `RF`.
impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::ImgRf => write!(f, "Img+RF"),
            Scheme::ImgOnly => write!(f, "Img"),
            Scheme::RfOnly => write!(f, "RF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modality_flags() {
        assert!(Scheme::ImgRf.uses_images() && Scheme::ImgRf.uses_rf());
        assert!(Scheme::ImgOnly.uses_images() && !Scheme::ImgOnly.uses_rf());
        assert!(!Scheme::RfOnly.uses_images() && Scheme::RfOnly.uses_rf());
    }

    #[test]
    fn feature_dims() {
        assert_eq!(Scheme::ImgRf.feature_dim(1), 2);
        assert_eq!(Scheme::ImgRf.feature_dim(100), 101);
        assert_eq!(Scheme::ImgOnly.feature_dim(16), 16);
        assert_eq!(Scheme::RfOnly.feature_dim(1600), 1);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Scheme::ImgRf.to_string(), "Img+RF");
        assert_eq!(Scheme::ImgOnly.to_string(), "Img");
        assert_eq!(Scheme::RfOnly.to_string(), "RF");
    }
}
