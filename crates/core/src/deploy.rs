//! Deployment: streaming split inference and proactive link control.
//!
//! The paper's motivation (§1) is *proactive* 5G operation: predict the
//! received power `T = 120 ms` ahead so the system can act **before** a
//! pedestrian blocks the beam. This module closes that loop:
//!
//! * [`StreamingDeployment`] replays a trained [`SplitModel`] over a
//!   trace frame by frame, shipping each frame's quantized cut-layer
//!   features over the simulated uplink (per-frame payload
//!   `pooled_pixels · R` bits). A feature that has not fully arrived by
//!   the next frame boundary is a **deadline miss**: the BS falls back
//!   to the most recent delivered feature (stale data), exactly as a
//!   real pipeline would.
//! * [`LinkPolicy`] compares a *proactive* controller (leave the mmWave
//!   link when the `T`-ahead prediction falls below a threshold) with
//!   the *reactive* baseline (leave only after the measured power has
//!   already collapsed). The outage metric is the fraction of frames
//!   spent on a blocked mmWave link.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_channel::TransferSimulator;
use sl_scene::SequenceDataset;
use sl_telemetry::{EventBuilder, Telemetry};
use sl_tensor::Tensor;

use crate::config::ExperimentConfig;
use crate::model::SplitModel;

/// One streamed prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPoint {
    /// Trace index of the frame the prediction was made *at*.
    pub at_index: usize,
    /// Trace index of the predicted (future) sample.
    pub target_index: usize,
    /// Predicted received power, dBm.
    pub predicted_dbm: f32,
    /// Ground truth at the target index, dBm.
    pub actual_dbm: f32,
    /// Whether the newest feature arrived after the frame deadline.
    pub stale_feature: bool,
}

/// Summary of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Per-frame predictions, in time order.
    pub points: Vec<StreamPoint>,
    /// Frames whose feature missed the frame deadline.
    pub deadline_misses: usize,
    /// Total uplink payload shipped, bits.
    pub payload_bits: u64,
    /// Total simulated airtime, seconds.
    pub airtime_s: f64,
}

impl StreamReport {
    /// RMSE (dB) of the streamed predictions.
    pub fn rmse_db(&self) -> f32 {
        assert!(!self.points.is_empty(), "StreamReport: no points");
        let mse: f32 = self
            .points
            .iter()
            .map(|p| (p.predicted_dbm - p.actual_dbm).powi(2))
            .sum::<f32>()
            / self.points.len() as f32;
        mse.sqrt()
    }

    /// Fraction of frames with stale features.
    pub fn miss_rate(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.deadline_misses as f64 / self.points.len() as f64
        }
    }
}

/// Streams a trained model over the validation region of a dataset.
pub struct StreamingDeployment {
    uplink: TransferSimulator,
    /// Slots available per frame interval before a feature goes stale.
    slots_per_frame: u64,
    rng: StdRng,
}

impl StreamingDeployment {
    /// Builds a deployment using the experiment's uplink and
    /// retransmission policy. `frame_interval_s` bounds each feature's
    /// delivery deadline.
    pub fn new(config: &ExperimentConfig, frame_interval_s: f64, seed: u64) -> Self {
        let slots_per_frame = (frame_interval_s / config.uplink.slot_s).floor().max(1.0) as u64;
        StreamingDeployment {
            uplink: TransferSimulator::new(config.uplink.clone(), config.retransmission),
            slots_per_frame,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Slots available per frame.
    pub fn slots_per_frame(&self) -> u64 {
        self.slots_per_frame
    }

    /// Streams `count` validation frames starting at validation offset
    /// `offset` through `model`.
    pub fn run(
        &mut self,
        model: &mut SplitModel,
        dataset: &SequenceDataset,
        offset: usize,
        count: usize,
    ) -> StreamReport {
        self.run_with(model, dataset, offset, count, &mut Telemetry::disabled())
    }

    /// [`run`](Self::run), additionally publishing deployment metrics:
    /// a `deploy.deadline_miss` counter, a `deploy.feature_age_frames`
    /// staleness histogram (0 = the frame's own feature arrived on time,
    /// `n` = the BS predicted from a feature `n` frames old), the
    /// `deploy.miss_rate` gauge and the uplink's transfer statistics
    /// under `deploy.uplink.*`.
    pub fn run_with(
        &mut self,
        model: &mut SplitModel,
        dataset: &SequenceDataset,
        offset: usize,
        count: usize,
        tele: &mut Telemetry,
    ) -> StreamReport {
        let val = dataset.val_indices();
        assert!(
            offset + count <= val.len(),
            "StreamingDeployment: window [{offset}, {}) exceeds validation set of {}",
            offset + count,
            val.len()
        );
        let normalizer = dataset.normalizer();
        let l = dataset.seq_len();
        let horizon = dataset.horizon();
        let uses_images = model.scheme().uses_images();
        let payload = model.frame_payload_bits();

        let mut feature_window: Vec<Tensor> = Vec::with_capacity(l);
        let mut last_delivered: Option<Tensor> = None;
        let mut points = Vec::with_capacity(count);
        let mut misses = 0usize;
        let mut total_bits = 0u64;
        let mut airtime = 0.0f64;
        // Age (in frames) of the newest feature the BS actually holds.
        let mut feature_age: u64 = 0;

        for &k in &val[offset..offset + count] {
            // Power history is local to the BS.
            let start = k + 1 - l;
            let powers: Vec<f32> = dataset.trace().powers_dbm[start..=k]
                .iter()
                .map(|&p| normalizer.normalize(p))
                .collect();

            let mut stale = false;
            if uses_images {
                // The UE encodes the newest frame and ships it; older
                // features were shipped on previous frames.
                let fresh = model.encode_frame(&dataset.trace().frames[k]);
                let outcome = self.uplink.transfer(payload, &mut self.rng);
                total_bits += payload;
                airtime += self.uplink.slots_to_seconds(outcome.slots());
                let on_time = outcome.delivered() && outcome.slots() <= self.slots_per_frame;
                let arrived = if on_time {
                    feature_age = 0;
                    last_delivered = Some(fresh.clone());
                    fresh
                } else {
                    stale = true;
                    misses += 1;
                    feature_age += 1;
                    tele.inc("deploy.deadline_miss");
                    // Mirrored under the net.* namespace so the networked
                    // runtime's dashboards gate on one metric family for
                    // both simulated and socket-borne deadline misses.
                    tele.inc("net.deadline_miss");
                    last_delivered.clone().unwrap_or_else(|| fresh.map(|_| 0.0))
                };
                tele.observe("deploy.feature_age_frames", feature_age as f64);
                if feature_window.len() == l {
                    feature_window.remove(0);
                }
                feature_window.push(arrived);
                // Cold start: replicate the first feature backwards.
                while feature_window.len() < l {
                    let first = feature_window[0].clone();
                    feature_window.insert(0, first);
                }
            }

            let pred = model.predict_window(&feature_window, &powers);
            let target_index = k + horizon;
            points.push(StreamPoint {
                at_index: k,
                target_index,
                predicted_dbm: normalizer.denormalize(pred),
                actual_dbm: dataset.trace().powers_dbm[target_index],
                stale_feature: stale,
            });
        }

        let report = StreamReport {
            points,
            deadline_misses: misses,
            payload_bits: total_bits,
            airtime_s: airtime,
        };
        if tele.is_enabled() && !report.points.is_empty() {
            tele.add("deploy.frames", report.points.len() as u64);
            tele.gauge_set("deploy.miss_rate", report.miss_rate());
            tele.gauge_add("sim.airtime_s", report.airtime_s);
            self.uplink.publish_metrics(tele, "deploy.uplink");
            tele.emit(
                EventBuilder::new("deploy_end")
                    .u64("frames", report.points.len() as u64)
                    .u64("deadline_misses", report.deadline_misses as u64)
                    .f64("miss_rate", report.miss_rate())
                    .u64("payload_bits", report.payload_bits)
                    .f64("airtime_s", report.airtime_s)
                    .f64("rmse_db", f64::from(report.rmse_db())),
            );
        }
        report
    }
}

/// When the controller leaves / rejoins the mmWave link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkPolicy {
    /// Act on the `T`-ahead *prediction*: leave when the predicted power
    /// drops below `threshold_dbm`, return when it recovers above
    /// `threshold_dbm + hysteresis_db`.
    Proactive {
        /// Leave threshold, dBm.
        threshold_dbm: f32,
        /// Re-entry hysteresis, dB.
        hysteresis_db: f32,
    },
    /// Act on the *measured* power only (the non-predictive baseline):
    /// same thresholds, but decisions lag the fade by one reaction
    /// frame.
    Reactive {
        /// Leave threshold, dBm.
        threshold_dbm: f32,
        /// Re-entry hysteresis, dB.
        hysteresis_db: f32,
    },
}

/// Outcome of running a [`LinkPolicy`] over a streamed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageReport {
    /// Frames spent on the mmWave link while its power was below the
    /// threshold — the outage the controller failed to avoid.
    pub blocked_on_link: usize,
    /// Frames spent off the mmWave link while it was actually fine —
    /// capacity sacrificed to caution.
    pub needless_fallback: usize,
    /// Number of link switches (leave or rejoin).
    pub switches: usize,
    /// Total frames evaluated.
    pub frames: usize,
}

impl OutageReport {
    /// Outage fraction (frames blocked while on the link / total).
    pub fn outage_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.blocked_on_link as f64 / self.frames as f64
        }
    }

    /// Publishes the report into `tele` under `prefix` (e.g.
    /// `"deploy.proactive"`): counters for blocked / needless-fallback /
    /// switch frames plus the `{prefix}.outage_rate` gauge.
    pub fn publish_metrics(&self, tele: &mut Telemetry, prefix: &str) {
        if !tele.is_enabled() {
            return;
        }
        tele.add(
            &format!("{prefix}.blocked_on_link"),
            self.blocked_on_link as u64,
        );
        tele.add(
            &format!("{prefix}.needless_fallback"),
            self.needless_fallback as u64,
        );
        tele.add(&format!("{prefix}.switches"), self.switches as u64);
        tele.add(&format!("{prefix}.frames"), self.frames as u64);
        tele.gauge_set(&format!("{prefix}.outage_rate"), self.outage_rate());
    }
}

/// Simulates a link controller over a streamed window.
///
/// At the frame where a [`StreamPoint`] was produced, the proactive
/// policy consults that point's `T`-ahead prediction, so by the time the
/// fade arrives the switch is already done; the reactive policy consults
/// the measured power of the *current* frame and therefore always reacts
/// after the fact. The outage is evaluated on the points' target frames.
pub fn simulate_link_policy(
    points: &[StreamPoint],
    policy: LinkPolicy,
    trace_powers: &[f32],
) -> OutageReport {
    let (threshold, hysteresis, proactive) = match policy {
        LinkPolicy::Proactive {
            threshold_dbm,
            hysteresis_db,
        } => (threshold_dbm, hysteresis_db, true),
        LinkPolicy::Reactive {
            threshold_dbm,
            hysteresis_db,
        } => (threshold_dbm, hysteresis_db, false),
    };
    let mut on_link = true;
    let mut blocked_on_link = 0usize;
    let mut needless_fallback = 0usize;
    let mut switches = 0usize;

    for p in points {
        // Decision input: prediction (proactive) vs current measurement
        // (reactive).
        let signal = if proactive {
            p.predicted_dbm
        } else {
            trace_powers[p.at_index]
        };
        let want_link = if on_link {
            signal >= threshold
        } else {
            signal >= threshold + hysteresis
        };
        if want_link != on_link {
            switches += 1;
            on_link = want_link;
        }
        // Evaluate at the target frame (what the decision was *for*).
        let actual = p.actual_dbm;
        if on_link && actual < threshold {
            blocked_on_link += 1;
        }
        if !on_link && actual >= threshold {
            needless_fallback += 1;
        }
    }
    OutageReport {
        blocked_on_link,
        needless_fallback,
        switches,
        frames: points.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooling::PoolingDim;
    use crate::scheme::Scheme;
    use crate::trainer::SplitTrainer;
    use sl_scene::{Scene, SceneConfig};

    fn dataset(seed: u64) -> SequenceDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
        SequenceDataset::paper_windowing(scene.simulate(&mut rng))
    }

    fn trained(scheme: Scheme, ds: &SequenceDataset) -> (ExperimentConfig, SplitTrainer) {
        let cfg = ExperimentConfig::quick(scheme, PoolingDim::new(16, 16));
        let mut t = SplitTrainer::new(cfg.clone(), ds);
        t.train(ds);
        (cfg, t)
    }

    #[test]
    fn streaming_produces_aligned_predictions() {
        let ds = dataset(300);
        let (cfg, mut trainer) = trained(Scheme::ImgRf, &ds);
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 1);
        let report = deploy.run(trainer.model_mut(), &ds, 2, 40);
        assert_eq!(report.points.len(), 40);
        for p in &report.points {
            assert_eq!(p.target_index, p.at_index + 4);
            assert_eq!(p.actual_dbm, ds.trace().powers_dbm[p.target_index]);
            assert!(p.predicted_dbm.is_finite());
        }
        // One feature per frame shipped.
        assert_eq!(
            report.payload_bits,
            40 * trainer.model_mut().frame_payload_bits()
        );
        assert!(report.rmse_db() > 0.0 && report.rmse_db() < 30.0);
    }

    #[test]
    fn tiny_features_meet_their_deadlines() {
        let ds = dataset(301);
        let (cfg, mut trainer) = trained(Scheme::ImgRf, &ds);
        // 33 ms deadline = 33 slots; a one-pixel 8-bit feature decodes in
        // one slot on the calibrated link.
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 2);
        assert_eq!(deploy.slots_per_frame(), 33);
        let report = deploy.run(trainer.model_mut(), &ds, 0, 30);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.miss_rate(), 0.0);
    }

    #[test]
    fn starved_link_causes_misses_not_crashes() {
        let ds = dataset(302);
        let (mut cfg, mut trainer) = trained(Scheme::ImgRf, &ds);
        // A link so bad that nothing ever decodes (even the 8-bit
        // per-frame feature): every frame goes stale and the predictor
        // keeps running on zeros.
        cfg.uplink = sl_channel::LinkConfig::paper_uplink().with_mean_snr_db(-90.0);
        cfg.retransmission = sl_channel::RetransmissionPolicy::WholePayload { max_slots: 5 };
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 3);
        let report = deploy.run(trainer.model_mut(), &ds, 0, 20);
        assert_eq!(report.deadline_misses, 20);
        assert!(report.points.iter().all(|p| p.stale_feature));
        assert!(report.points.iter().all(|p| p.predicted_dbm.is_finite()));
    }

    #[test]
    fn rf_only_streams_without_uplink() {
        let ds = dataset(303);
        let (cfg, mut trainer) = trained(Scheme::RfOnly, &ds);
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 4);
        let report = deploy.run(trainer.model_mut(), &ds, 0, 25);
        assert_eq!(report.payload_bits, 0);
        assert_eq!(report.airtime_s, 0.0);
        assert_eq!(report.points.len(), 25);
    }

    #[test]
    fn perfect_oracle_controller_avoids_all_outage() {
        // Synthetic points with perfect predictions: proactive control
        // must produce zero blocked-on-link frames.
        let trace: Vec<f32> = (0..60)
            .map(|k| if (20..30).contains(&k) { -45.0 } else { -18.0 })
            .collect();
        let points: Vec<StreamPoint> = (0..56)
            .map(|k| StreamPoint {
                at_index: k,
                target_index: k + 4,
                predicted_dbm: trace[k + 4],
                actual_dbm: trace[k + 4],
                stale_feature: false,
            })
            .collect();
        let proactive = simulate_link_policy(
            &points,
            LinkPolicy::Proactive {
                threshold_dbm: -30.0,
                hysteresis_db: 3.0,
            },
            &trace,
        );
        assert_eq!(proactive.blocked_on_link, 0);
        assert!(proactive.switches >= 2);

        let reactive = simulate_link_policy(
            &points,
            LinkPolicy::Reactive {
                threshold_dbm: -30.0,
                hysteresis_db: 3.0,
            },
            &trace,
        );
        // The reactive controller is still on the link when the fade
        // arrives (its signal is 4 frames behind the evaluation frame).
        assert!(
            reactive.blocked_on_link > 0,
            "reactive control must suffer outage at fade onset"
        );
        assert!(proactive.outage_rate() < reactive.outage_rate());
    }

    #[test]
    fn deploy_telemetry_counts_misses_and_staleness() {
        use sl_telemetry::{MemorySink, Telemetry, TelemetryMode};
        let ds = dataset(302);
        let (mut cfg, mut trainer) = trained(Scheme::ImgRf, &ds);
        // Starved link: every frame misses its deadline.
        cfg.uplink = sl_channel::LinkConfig::paper_uplink().with_mean_snr_db(-90.0);
        cfg.retransmission = sl_channel::RetransmissionPolicy::WholePayload { max_slots: 5 };
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 3);
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        let report = deploy.run_with(trainer.model_mut(), &ds, 0, 20, &mut tele);

        let snap = tele.snapshot();
        assert_eq!(snap.counter("deploy.deadline_miss"), 20);
        assert_eq!(snap.counter("net.deadline_miss"), 20);
        assert_eq!(snap.counter("deploy.frames"), 20);
        assert_eq!(snap.gauge("deploy.miss_rate"), Some(1.0));
        assert!((snap.gauge("sim.airtime_s").unwrap() - report.airtime_s).abs() < 1e-9);
        // Staleness grows monotonically when nothing ever arrives: ages
        // 1..=20 observed, one per frame.
        let age = &snap.histograms["deploy.feature_age_frames"];
        assert_eq!(age.count(), 20);
        assert_eq!(age.min(), Some(1.0));
        assert_eq!(age.max(), Some(20.0));
        assert_eq!(snap.counter("deploy.uplink.transfers"), 20);
        assert_eq!(snap.counter("deploy.uplink.timeouts"), 20);
        assert!(events.borrow().iter().any(|e| e.kind == "deploy_end"));
    }

    #[test]
    fn net_deadline_miss_gates_stale_feature_fallback() {
        use sl_telemetry::{MemorySink, Telemetry, TelemetryMode};
        let ds = dataset(303);
        let (mut cfg, mut trainer) = trained(Scheme::ImgRf, &ds);
        // Marginal link: some frames arrive on time, the rest fall back
        // to the last delivered (stale) feature. Every stale fallback
        // must tick `net.deadline_miss` in lockstep with the report.
        cfg.uplink = sl_channel::LinkConfig::paper_uplink().with_mean_snr_db(-12.0);
        cfg.retransmission = sl_channel::RetransmissionPolicy::WholePayload { max_slots: 3 };
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 1);
        let (sink, _events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        let report = deploy.run_with(trainer.model_mut(), &ds, 0, 30, &mut tele);

        let snap = tele.snapshot();
        assert_eq!(
            snap.counter("net.deadline_miss"),
            report.deadline_misses as u64,
            "net.deadline_miss must count exactly the stale-feature fallbacks"
        );
        assert_eq!(
            snap.counter("net.deadline_miss"),
            snap.counter("deploy.deadline_miss")
        );
        let stale_points = report.points.iter().filter(|p| p.stale_feature).count();
        assert_eq!(stale_points, report.deadline_misses);
    }

    #[test]
    fn deploy_disabled_telemetry_records_nothing() {
        let ds = dataset(300);
        let (cfg, mut trainer) = trained(Scheme::ImgRf, &ds);
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 1);
        let mut tele = sl_telemetry::Telemetry::disabled();
        deploy.run_with(trainer.model_mut(), &ds, 2, 10, &mut tele);
        assert!(tele.snapshot().is_empty());
    }

    #[test]
    fn outage_report_publishes_metrics() {
        let r = OutageReport {
            blocked_on_link: 5,
            needless_fallback: 2,
            switches: 4,
            frames: 50,
        };
        let mut tele = sl_telemetry::Telemetry::summary();
        r.publish_metrics(&mut tele, "deploy.proactive");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("deploy.proactive.blocked_on_link"), 5);
        assert_eq!(snap.counter("deploy.proactive.switches"), 4);
        assert_eq!(snap.gauge("deploy.proactive.outage_rate"), Some(0.1));
    }

    #[test]
    fn outage_report_rates() {
        let r = OutageReport {
            blocked_on_link: 5,
            needless_fallback: 2,
            switches: 4,
            frames: 50,
        };
        assert!((r.outage_rate() - 0.1).abs() < 1e-12);
        let empty = OutageReport {
            blocked_on_link: 0,
            needless_fallback: 0,
            switches: 0,
            frames: 0,
        };
        assert_eq!(empty.outage_rate(), 0.0);
    }
}
