//! Cut-layer quantization.
//!
//! The paper's payload formula charges `R` bits per transmitted pixel
//! (`R = 8`). We actually apply that quantization to the forward
//! activations — the UE's sigmoid output lies in `[0, 1]`, so a uniform
//! `2^R`-level grid is exact — and use the straight-through estimator
//! (identity) for its gradient, the standard treatment of quantized
//! activations in split/federated learning.

use sl_tensor::Tensor;

/// Uniform `[0, 1]` quantizer with `2^R` levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    /// Bit depth `R`.
    bit_depth: usize,
}

impl Quantizer {
    /// Creates an `R`-bit quantizer (`1 ≤ R ≤ 24`).
    pub fn new(bit_depth: usize) -> Self {
        assert!(
            (1..=24).contains(&bit_depth),
            "Quantizer: bit depth must be in 1..=24, got {bit_depth}"
        );
        Quantizer { bit_depth }
    }

    /// The bit depth `R`.
    pub fn bit_depth(&self) -> usize {
        self.bit_depth
    }

    /// Number of levels, `2^R`.
    pub fn levels(&self) -> u32 {
        1u32 << self.bit_depth
    }

    /// Quantizes a `[0, 1]` tensor to the nearest of `2^R` uniform levels
    /// (values are clamped into range first — exactly what a fixed-width
    /// wire format does).
    pub fn quantize(&self, x: &Tensor) -> Tensor {
        let max = (self.levels() - 1) as f32;
        x.map(|v| (v.clamp(0.0, 1.0) * max).round() / max)
    }

    /// Worst-case quantization error, `1 / (2·(2^R − 1))`.
    pub fn max_error(&self) -> f32 {
        0.5 / ((self.levels() - 1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_grid() {
        let q = Quantizer::new(8);
        assert_eq!(q.levels(), 256);
        let x = Tensor::from_slice(&[0.0, 1.0, 0.5, 0.12345]);
        let y = q.quantize(&x);
        // Endpoints exact.
        assert_eq!(y.data()[0], 0.0);
        assert_eq!(y.data()[1], 1.0);
        // All values on the 255-step grid.
        for &v in y.data() {
            let steps = v * 255.0;
            assert!((steps - steps.round()).abs() < 1e-5);
        }
        // Error bounded.
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() <= q.max_error() + 1e-7);
        }
    }

    #[test]
    fn one_bit_is_binarization() {
        let q = Quantizer::new(1);
        let y = q.quantize(&Tensor::from_slice(&[0.2, 0.8, 0.5001]));
        assert_eq!(y.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let q = Quantizer::new(4);
        let y = q.quantize(&Tensor::from_slice(&[-3.0, 7.0]));
        assert_eq!(y.data(), &[0.0, 1.0]);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(6);
        let x = Tensor::from_fn([64], |i| i as f32 / 63.0);
        let once = q.quantize(&x);
        let twice = q.quantize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn error_shrinks_with_depth() {
        assert!(Quantizer::new(4).max_error() > Quantizer::new(8).max_error());
        assert!((Quantizer::new(8).max_error() - 0.5 / 255.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bit depth")]
    fn zero_bits_rejected() {
        Quantizer::new(0);
    }
}
