//! Replayable training RNG.
//!
//! Resumable checkpoints need to restore the trainer's RNG *state*, but
//! `rand` deliberately does not expose StdRng internals. Instead,
//! [`CountingRng`] wraps `StdRng` and counts every draw by kind. Both
//! `StdRng`'s block generator and the offline stand-in consume a fixed
//! amount of stream per call kind (`next_u32` one word, `next_u64` two,
//! independent of position), so a checkpoint stores only the two call
//! counts and [`CountingRng::advance_to`] replays a fresh seeded
//! generator to the exact same state — under either implementation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seeded `StdRng` that counts its draws so its state can be
/// checkpointed as `(seed, n32, n64)` and replayed.
#[derive(Debug, Clone)]
pub struct CountingRng {
    inner: StdRng,
    n32: u64,
    n64: u64,
    fills: u64,
}

impl CountingRng {
    /// A fresh counting generator seeded like `StdRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        CountingRng {
            inner: StdRng::seed_from_u64(seed),
            n32: 0,
            n64: 0,
            fills: 0,
        }
    }

    /// Draw counts so far: `(next_u32 calls, next_u64 calls)`.
    pub fn words(&self) -> (u64, u64) {
        (self.n32, self.n64)
    }

    /// `fill_bytes` calls so far. The trainer never uses byte fills;
    /// checkpointing refuses to serialize a generator that has (the
    /// consumed stream per call would depend on the buffer lengths).
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Replays draws until the counts reach `(n32, n64)`. Because each
    /// call kind consumes a position-independent amount of the stream,
    /// the resulting state is identical to any original interleaving
    /// with the same totals. Errors if the generator is already past
    /// either target.
    pub fn advance_to(&mut self, n32: u64, n64: u64) -> Result<(), String> {
        if n32 < self.n32 || n64 < self.n64 {
            return Err(format!(
                "CountingRng: cannot rewind from ({}, {}) to ({n32}, {n64})",
                self.n32, self.n64
            ));
        }
        while self.n32 < n32 {
            let _ = self.next_u32();
        }
        while self.n64 < n64 {
            let _ = self.next_u64();
        }
        Ok(())
    }
}

impl RngCore for CountingRng {
    fn next_u32(&mut self) -> u32 {
        self.n32 += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.n64 += 1;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fills += 1;
        self.inner.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn advance_to_replays_the_exact_state() {
        let mut a = CountingRng::seed_from_u64(9);
        // A mixed interleaving of draw kinds.
        let _: f64 = a.random();
        let _ = a.next_u32();
        let _: f32 = a.random();
        let _ = a.random_range(0usize..17);
        let (n32, n64) = a.words();

        let mut b = CountingRng::seed_from_u64(9);
        b.advance_to(n32, n64).unwrap();
        assert_eq!(b.words(), (n32, n64));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rewinding_is_an_error() {
        let mut a = CountingRng::seed_from_u64(1);
        let _ = a.next_u64();
        assert!(a.advance_to(0, 0).is_err());
        assert_eq!(a.fills(), 0);
    }
}
