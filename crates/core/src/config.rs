//! Experiment configuration.

use sl_channel::{LinkConfig, RetransmissionPolicy};

use crate::clock::ComputeModel;
use crate::pooling::PoolingDim;
use crate::scheme::Scheme;

/// The mean uplink SNR (dB) that reproduces the paper's Table 1
/// mid-points under the whole-payload retransmission model.
///
/// The paper's published link budget gives a 76.6 dB mean uplink SNR, at
/// which every pooling dimension except 1×1 decodes with probability
/// ≈ 1 — inconsistent with the table's 0.027 at 4×4 pooling. Solving
/// `exp(−(2^{B/(τW)} − 1)/SNR̄) = 0.027` for the 4×4 payload yields
/// `SNR̄ ≈ 31.2` (14.9 dB); see DESIGN.md §5. The Fig. 3a harness uses
/// this calibrated link so the communication-time spread between pooling
/// dimensions (the paper's central mechanism) is reproduced.
pub const PAPER_CALIBRATED_UPLINK_SNR_DB: f64 = 14.94;

/// Everything needed to run one training experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Input scheme (`Img+RF`, `Img`, `RF`).
    pub scheme: Scheme,
    /// Cut-layer pooling dimension.
    pub pooling: PoolingDim,
    /// Minibatch size `B` (paper: 64).
    pub batch_size: usize,
    /// Cut-layer quantization bit depth `R` (paper: 8).
    pub bit_depth: usize,
    /// UE CNN hidden channels.
    pub conv_channels: usize,
    /// BS LSTM hidden units.
    pub hidden_dim: usize,
    /// BS recurrent cell type (paper: unspecified "RNN layers"; LSTM by
    /// default, GRU for the cell ablation).
    pub rnn_cell: crate::RnnCell,
    /// Adam learning rate (paper: 1e-3).
    pub learning_rate: f32,
    /// Global gradient-norm clip (guards the LSTM).
    pub grad_clip: f32,
    /// Maximum training epochs (paper: 100).
    pub max_epochs: usize,
    /// Early-stop when validation RMSE (dB) reaches this (paper: 2.7).
    pub target_rmse_db: f32,
    /// Cap on validation samples per evaluation (`None` = all). Large
    /// traces validate on a deterministic stride-subsample to keep the
    /// harness fast; accuracy differences are < 0.1 dB.
    pub val_subsample: Option<usize>,
    /// Modelled device throughputs for the simulated clock.
    pub compute: ComputeModel,
    /// Uplink (activations) channel.
    pub uplink: LinkConfig,
    /// Downlink (gradients) channel.
    pub downlink: LinkConfig,
    /// Retransmission policy for both directions.
    pub retransmission: RetransmissionPolicy,
    /// Give up after this many consecutive payload timeouts.
    pub stall_limit: usize,
    /// RNG seed for initialization, batching and the channel.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's configuration for the given scheme and pooling:
    /// `B = 64`, `R = 8`, Adam(1e-3), ≤ 100 epochs, 2.7 dB target, and
    /// the **calibrated** uplink SNR (see
    /// [`PAPER_CALIBRATED_UPLINK_SNR_DB`]).
    pub fn paper(scheme: Scheme, pooling: PoolingDim) -> Self {
        ExperimentConfig {
            scheme,
            pooling,
            batch_size: 64,
            bit_depth: 8,
            conv_channels: 8,
            hidden_dim: 32,
            rnn_cell: crate::RnnCell::Lstm,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            max_epochs: 100,
            target_rmse_db: 2.7,
            val_subsample: Some(512),
            compute: ComputeModel::paper(),
            uplink: LinkConfig::paper_uplink().with_mean_snr_db(PAPER_CALIBRATED_UPLINK_SNR_DB),
            downlink: LinkConfig::paper_downlink(),
            retransmission: RetransmissionPolicy::WholePayload { max_slots: 20_000 },
            stall_limit: 8,
            seed: 7,
        }
    }

    /// The paper configuration with the *literal* published link budget
    /// (76.6 dB uplink SNR) — used by Table 1's literal row and by
    /// ablations.
    pub fn paper_literal_link(scheme: Scheme, pooling: PoolingDim) -> Self {
        ExperimentConfig {
            uplink: LinkConfig::paper_uplink(),
            ..ExperimentConfig::paper(scheme, pooling)
        }
    }

    /// A down-scaled configuration for tests: small network, few epochs,
    /// small batches. Pooling dimensions must tile the caller's image
    /// size (tests use 16×16 scenes).
    pub fn quick(scheme: Scheme, pooling: PoolingDim) -> Self {
        ExperimentConfig {
            batch_size: 8,
            conv_channels: 2,
            hidden_dim: 8,
            learning_rate: 5e-3,
            max_epochs: 3,
            target_rmse_db: 0.0, // never early-stop in tests
            val_subsample: Some(64),
            ..ExperimentConfig::paper(scheme, pooling)
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) {
        assert!(self.batch_size > 0, "ExperimentConfig: empty batch");
        assert!(self.max_epochs > 0, "ExperimentConfig: zero epochs");
        assert!(self.learning_rate > 0.0);
        assert!(self.grad_clip > 0.0);
        assert!(self.stall_limit > 0);
        if let Some(n) = self.val_subsample {
            assert!(n > 0, "ExperimentConfig: empty validation subsample");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_paper_constants() {
        let c = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        c.validate();
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.bit_depth, 8);
        assert!((c.learning_rate - 1e-3).abs() < 1e-9);
        assert_eq!(c.max_epochs, 100);
        assert!((c.target_rmse_db - 2.7).abs() < 1e-6);
        assert!((c.uplink.mean_snr_db() - PAPER_CALIBRATED_UPLINK_SNR_DB).abs() < 1e-9);
        assert!((c.downlink.tx_power_dbm - 40.0).abs() < 1e-9);
    }

    #[test]
    fn literal_link_uses_published_budget() {
        let c = ExperimentConfig::paper_literal_link(Scheme::ImgRf, PoolingDim::MEDIUM);
        assert!((c.uplink.mean_snr_db() - 76.6).abs() < 0.1);
    }

    #[test]
    fn calibrated_snr_reproduces_table1_midpoint() {
        use sl_channel::{success_probability, PayloadSpec};
        let c = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::MEDIUM);
        let spec = PayloadSpec::paper(64);
        let p = success_probability(&c.uplink, spec.uplink_bits(4, 4) as f64);
        assert!((p - 0.027).abs() < 0.005, "p(4x4) = {p}");
        let p_pixel = success_probability(&c.uplink, spec.uplink_bits(40, 40) as f64);
        assert!(p_pixel > 0.99, "p(1-pixel) = {p_pixel}");
        let p_raw = success_probability(&c.uplink, spec.uplink_bits(1, 1) as f64);
        assert!(p_raw < 1e-9, "p(1x1) = {p_raw}");
    }

    #[test]
    fn quick_config_is_small() {
        let c = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
        c.validate();
        assert!(c.batch_size <= 8 && c.max_epochs <= 3);
    }
}
