//! The composed split model.

use rand::Rng;

use sl_channel::PayloadSpec;
use sl_tensor::Tensor;

use crate::batch::Batch;
use crate::bs::{BsNetwork, RnnCell};
use crate::pooling::PoolingDim;
use crate::quantize::Quantizer;
use crate::scheme::Scheme;
use crate::ue::UeNetwork;

/// The full split network: UE half, cut-layer quantizer and BS half,
/// specialized by [`Scheme`] (the RF-only baseline has no UE half at
/// all — the BS already owns the power measurements).
pub struct SplitModel {
    scheme: Scheme,
    pooling: PoolingDim,
    quantizer: Quantizer,
    ue: Option<UeNetwork>,
    bs: BsNetwork,
    image_h: usize,
    image_w: usize,
    seq_len: usize,
    /// `(B, L)` of the most recent forward, for routing the backward.
    last_batch_shape: Option<(usize, usize)>,
}

impl SplitModel {
    /// Builds a split model.
    ///
    /// * `image_h × image_w` — raw depth-image (and CNN output) size.
    /// * `seq_len` — RNN sequence length `L`.
    /// * `conv_channels` — hidden channels of the UE CNN.
    /// * `hidden_dim` — BS LSTM units.
    /// * `bit_depth` — cut-layer quantization `R`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scheme: Scheme,
        pooling: PoolingDim,
        image_h: usize,
        image_w: usize,
        seq_len: usize,
        conv_channels: usize,
        hidden_dim: usize,
        bit_depth: usize,
        rng: &mut impl Rng,
    ) -> Self {
        SplitModel::with_cell(
            scheme,
            pooling,
            image_h,
            image_w,
            seq_len,
            conv_channels,
            hidden_dim,
            bit_depth,
            RnnCell::Lstm,
            rng,
        )
    }

    /// [`SplitModel::new`] with an explicit BS recurrent cell type.
    #[allow(clippy::too_many_arguments)]
    pub fn with_cell(
        scheme: Scheme,
        pooling: PoolingDim,
        image_h: usize,
        image_w: usize,
        seq_len: usize,
        conv_channels: usize,
        hidden_dim: usize,
        bit_depth: usize,
        cell: RnnCell,
        rng: &mut impl Rng,
    ) -> Self {
        let ue = scheme
            .uses_images()
            .then(|| UeNetwork::new(image_h, image_w, conv_channels, pooling, rng));
        let pooled = pooling.output_pixels(image_h, image_w);
        let bs = BsNetwork::with_cell(scheme.feature_dim(pooled), hidden_dim, cell, rng);
        SplitModel {
            scheme,
            pooling,
            quantizer: Quantizer::new(bit_depth),
            ue,
            bs,
            image_h,
            image_w,
            seq_len,
            last_batch_shape: None,
        }
    }

    /// The input scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The cut-layer pooling dimension.
    pub fn pooling(&self) -> PoolingDim {
        self.pooling
    }

    /// Pooled feature pixels per image.
    pub fn pooled_pixels(&self) -> usize {
        self.pooling.output_pixels(self.image_h, self.image_w)
    }

    /// The UE half, when the scheme has one.
    pub fn ue_mut(&mut self) -> Option<&mut UeNetwork> {
        self.ue.as_mut()
    }

    /// The BS half.
    pub fn bs_mut(&mut self) -> &mut BsNetwork {
        &mut self.bs
    }

    /// Forward pass over a batch: runs the UE CNN (if any), quantizes the
    /// cut-layer activations to `R` bits (the exact values that would be
    /// transmitted), fuses with the RF history per the scheme and runs
    /// the BS half. Returns `[B, 1]` normalized power predictions.
    ///
    /// Composed from [`SplitModel::forward_ue`] and
    /// [`SplitModel::forward_bs`] — the networked runtime calls the two
    /// halves on opposite ends of a socket, this method chains them in
    /// process.
    pub fn forward(&mut self, batch: &Batch) -> Tensor {
        let b = batch.batch_size();
        let l = batch.seq_len;
        let img_features = self.forward_ue(batch);
        self.forward_bs(img_features.as_ref(), &batch.powers_norm, b, l)
    }

    /// UE-side forward: runs the CNN + pooling over the batch images and
    /// quantizes the cut-layer activations to `R` bits — exactly the
    /// `[B·L, 1, ph, pw]` tensor a real UE would put on the air. `None`
    /// for the RF-only scheme, which has no UE half.
    pub fn forward_ue(&mut self, batch: &Batch) -> Option<Tensor> {
        self.ue.as_mut().map(|ue| {
            let images = batch
                .images
                .as_ref()
                // slm-lint: allow(no-expect) scheme/batch agreement is validated by the WiringSpec pre-run check and Batch construction
                .expect("SplitModel: image scheme requires batch images");
            let pooled = ue.forward(images); // [B·L, 1, ph, pw]
                                             // What actually crosses the link: R-bit-quantized activations.
            self.quantizer.quantize(&pooled)
        })
    }

    /// BS-side forward from the (delivered) quantized cut activations:
    /// fuses them with the normalized RF power history per the scheme and
    /// runs the BS half. Returns `[B, 1]` normalized power predictions
    /// and arms the backward routing for this `(B, L)`. `cut` must be
    /// `Some` exactly when the scheme uses images.
    pub fn forward_bs(
        &mut self,
        cut: Option<&Tensor>,
        powers_norm: &Tensor,
        b: usize,
        l: usize,
    ) -> Tensor {
        assert_eq!(
            l, self.seq_len,
            "SplitModel: batch L {l} != model L {}",
            self.seq_len
        );
        self.last_batch_shape = Some((b, l));
        let features = self.fuse(cut, powers_norm, b, l);
        self.bs.forward(&features)
    }

    /// Builds the `[B, L, F]` BS input from the (quantized) image
    /// features and the normalized powers.
    fn fuse(&self, img: Option<&Tensor>, powers: &Tensor, b: usize, l: usize) -> Tensor {
        let p = self.pooled_pixels();
        match self.scheme {
            Scheme::RfOnly => powers.reshape([b, l, 1]),
            Scheme::ImgOnly => {
                // slm-lint: allow(no-expect) forward() always computes image features for image schemes
                let img = img.expect("ImgOnly scheme requires image features");
                img.reshape([b, l, p])
            }
            Scheme::ImgRf => {
                // slm-lint: allow(no-expect) forward() always computes image features for image schemes
                let img = img.expect("ImgRf scheme requires image features");
                let f = p + 1;
                let mut out = Tensor::zeros([b, l, f]);
                let src = img.data(); // row (b·L + t) holds p pixels
                for bi in 0..b {
                    for t in 0..l {
                        let row = bi * l + t;
                        let dst_base = (bi * l + t) * f;
                        out.data_mut()[dst_base..dst_base + p]
                            .copy_from_slice(&src[row * p..(row + 1) * p]);
                        out.data_mut()[dst_base + p] = powers.at(&[bi, t]);
                    }
                }
                out
            }
        }
    }

    /// Backward pass from the prediction gradient. Accumulates gradients
    /// in both halves and returns the cut-layer gradient tensor
    /// (`[B·L, 1, ph, pw]`) that the downlink would carry, or `None` for
    /// the RF-only scheme.
    ///
    /// Composed from [`SplitModel::backward_bs`] and
    /// [`SplitModel::backward_ue`], mirroring the forward split.
    pub fn backward(&mut self, grad_pred: &Tensor) -> Option<Tensor> {
        let cut = self.backward_bs(grad_pred)?;
        self.backward_ue(&cut);
        Some(cut)
    }

    /// BS-side backward: backprops the BS half from the prediction
    /// gradient and returns the cut-layer gradient that the downlink
    /// would carry (`None` for RF-only). Does *not* touch the UE half —
    /// in the networked runtime the UE applies
    /// [`SplitModel::backward_ue`] after the gradient crosses the link.
    pub fn backward_bs(&mut self, grad_pred: &Tensor) -> Option<Tensor> {
        let (b, l) = self
            .last_batch_shape
            .take()
            // slm-lint: allow(no-expect) forward-before-backward is the Layer trait's documented calling contract
            .expect("SplitModel::backward called without a preceding forward");
        let grad_features = self.bs.backward(grad_pred); // [B, L, F]
        if !self.scheme.uses_images() {
            return None;
        }
        let p = self.pooled_pixels();
        let f = self.scheme.feature_dim(p);
        let (ph, pw) = self.pooling_output();
        // Extract the image-feature slice of each step's gradient. For
        // ImgOnly this is the whole row (and the copy below is layout-
        // preserving); for ImgRf it drops the trailing RF column.
        let mut cut = Tensor::zeros([b * l, 1, ph, pw]);
        let src = grad_features.data();
        for row in 0..b * l {
            let base = row * f;
            cut.data_mut()[row * p..(row + 1) * p].copy_from_slice(&src[base..base + p]);
        }
        Some(cut)
    }

    /// UE-side backward from the delivered cut-layer gradient. The
    /// straight-through estimator makes the quantizer's gradient the
    /// identity, so the cut gradient feeds the pooling layer directly.
    /// No-op for the RF-only scheme.
    pub fn backward_ue(&mut self, cut_grad: &Tensor) {
        if let Some(ue) = self.ue.as_mut() {
            ue.backward(cut_grad);
        }
    }

    fn pooling_output(&self) -> (usize, usize) {
        self.pooling.output_size(self.image_h, self.image_w)
    }

    /// The per-step uplink payload in bits for batch size `b` (the
    /// paper's `B_UL` formula); `0` for the RF-only scheme.
    pub fn uplink_payload_bits(&self, b: usize) -> u64 {
        if !self.scheme.uses_images() {
            return 0;
        }
        let spec = PayloadSpec {
            image_height: self.image_h,
            image_width: self.image_w,
            batch_size: b,
            bit_depth: self.quantizer.bit_depth(),
            sequence_len: self.seq_len,
        };
        spec.uplink_bits(self.pooling.h, self.pooling.w)
    }

    /// The per-step downlink (cut-gradient) payload in bits.
    pub fn downlink_payload_bits(&self, b: usize) -> u64 {
        self.uplink_payload_bits(b)
    }

    /// Modelled UE FLOPs for one forward+backward step over batch `b`
    /// (backward ≈ 2× forward, the usual heuristic).
    pub fn ue_step_flops(&self, b: usize) -> f64 {
        match &self.ue {
            Some(ue) => ue.flops_forward_per_image() * (b * self.seq_len) as f64 * 3.0,
            None => 0.0,
        }
    }

    /// Modelled BS FLOPs for one forward+backward step over batch `b`.
    pub fn bs_step_flops(&self, b: usize) -> f64 {
        self.bs.flops_forward_per_sequence(self.seq_len) * b as f64 * 3.0
    }

    /// Modelled inference-only FLOPs (forward pass, both halves).
    pub fn inference_flops(&self, b: usize) -> f64 {
        (self.ue_step_flops(b) + self.bs_step_flops(b)) / 3.0
    }

    /// UE-side inference for one deployed frame: runs the CNN + pooling
    /// on a single `[H, W]` depth frame and returns the quantized
    /// feature vector (`[pooled_pixels]`) exactly as it would be put on
    /// the air. Returns an empty tensor for the RF-only scheme.
    pub fn encode_frame(&mut self, frame: &Tensor) -> Tensor {
        let p = self.pooled_pixels();
        match self.ue.as_mut() {
            Some(ue) => {
                let pooled = ue.infer_pooled_map(frame);
                self.quantizer.quantize(&pooled).reshape([p])
            }
            None => Tensor::zeros([0]),
        }
    }

    /// Per-frame inference payload in bits (`pooled_pixels · R`); `0`
    /// for RF-only.
    pub fn frame_payload_bits(&self) -> u64 {
        if !self.scheme.uses_images() {
            return 0;
        }
        (self.pooled_pixels() * self.quantizer.bit_depth()) as u64
    }

    /// BS-side inference over a rolling window: `features[t]` is the
    /// (possibly stale) feature vector for step `t` and `powers_norm[t]`
    /// the normalized RF power; both must have length `L`. Returns the
    /// normalized power prediction.
    pub fn predict_window(&mut self, features: &[Tensor], powers_norm: &[f32]) -> f32 {
        let l = self.seq_len;
        assert_eq!(
            powers_norm.len(),
            l,
            "predict_window: power history must have length L"
        );
        let p = self.pooled_pixels();
        let f = self.scheme.feature_dim(p);
        let mut input = Tensor::zeros([1, l, f]);
        if self.scheme.uses_images() {
            assert_eq!(
                features.len(),
                l,
                "predict_window: feature history must have length L"
            );
            for (t, feat) in features.iter().enumerate() {
                assert_eq!(
                    feat.numel(),
                    p,
                    "predict_window: feature {t} has wrong size"
                );
                input.data_mut()[t * f..t * f + p].copy_from_slice(feat.data());
            }
        }
        if self.scheme.uses_rf() {
            for (t, &pw) in powers_norm.iter().enumerate() {
                // The RF value sits after the image features (or alone).
                input.data_mut()[t * f + f - 1] = pw;
            }
        }
        let out = self.bs.forward(&input);
        self.bs.zero_grads();
        out.item()
    }

    /// Parameter/gradient pairs of the UE half (empty for RF-only).
    pub fn ue_params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.ue
            .as_mut()
            .map(|u| u.params_and_grads())
            .unwrap_or_default()
    }

    /// Parameter/gradient pairs of the BS half.
    pub fn bs_params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.bs.params_and_grads()
    }

    /// Clears accumulated gradients on both sides.
    pub fn zero_grads(&mut self) {
        if let Some(u) = self.ue.as_mut() {
            u.zero_grads();
        }
        self.bs.zero_grads();
    }

    /// Turns on per-layer profiling in both halves.
    pub fn enable_profiling(&mut self) {
        if let Some(u) = self.ue.as_mut() {
            u.enable_profiling();
        }
        self.bs.enable_profiling();
    }

    /// Turns off per-layer profiling in both halves (accumulated stats
    /// remain until the next publish).
    pub fn disable_profiling(&mut self) {
        if let Some(u) = self.ue.as_mut() {
            u.disable_profiling();
        }
        self.bs.disable_profiling();
    }

    /// Publishes both halves' per-layer stats to `tele`, tagged by side:
    /// the UE half under `nn.ue.layer.*`, the BS half under
    /// `nn.bs.layer.*` — so snapshots show where compute lives relative
    /// to the split point. Resets the accumulated stats.
    pub fn publish_profiles(&mut self, tele: &mut sl_telemetry::Telemetry) {
        if let Some(u) = self.ue.as_mut() {
            u.publish_profile(tele, "nn.ue");
        }
        self.bs.publish_profile(tele, "nn.bs");
    }

    /// Total trainable parameters across both halves.
    pub fn parameter_count(&mut self) -> usize {
        let ue = self.ue.as_mut().map(|u| u.parameter_count()).unwrap_or(0);
        ue + self.bs.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_scene::{Scene, SceneConfig, SequenceDataset};

    fn dataset() -> SequenceDataset {
        let mut rng = StdRng::seed_from_u64(60);
        let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
        SequenceDataset::paper_windowing(scene.simulate(&mut rng))
    }

    fn model(scheme: Scheme, pooling: PoolingDim) -> SplitModel {
        SplitModel::new(
            scheme,
            pooling,
            16,
            16,
            4,
            2,
            8,
            8,
            &mut StdRng::seed_from_u64(61),
        )
    }

    fn batch(ds: &SequenceDataset, scheme: Scheme, n: usize) -> Batch {
        let idx: Vec<usize> = ds.train_indices()[..n].to_vec();
        Batch::assemble(ds, ds.normalizer(), &idx, scheme.uses_images())
    }

    #[test]
    fn forward_shapes_for_all_schemes() {
        let ds = dataset();
        for scheme in Scheme::ALL {
            let mut m = model(scheme, PoolingDim::new(4, 4));
            let b = batch(&ds, scheme, 3);
            let pred = m.forward(&b);
            assert_eq!(pred.dims(), &[3, 1], "{scheme}");
            assert!(pred.all_finite());
        }
    }

    #[test]
    fn backward_produces_cut_gradient_for_image_schemes() {
        let ds = dataset();
        let mut m = model(Scheme::ImgRf, PoolingDim::new(4, 4));
        let b = batch(&ds, Scheme::ImgRf, 2);
        let pred = m.forward(&b);
        let cut = m.backward(&Tensor::ones(pred.dims())).unwrap();
        assert_eq!(cut.dims(), &[8, 1, 4, 4]);
        // Both halves accumulated gradients.
        assert!(m
            .ue_params_and_grads()
            .iter()
            .any(|(_, g)| g.sum_sq() > 0.0));
        assert!(m
            .bs_params_and_grads()
            .iter()
            .any(|(_, g)| g.sum_sq() > 0.0));
    }

    #[test]
    fn rf_only_has_no_ue_and_no_payload() {
        let ds = dataset();
        let mut m = model(Scheme::RfOnly, PoolingDim::new(16, 16));
        assert!(m.ue_mut().is_none());
        assert_eq!(m.uplink_payload_bits(64), 0);
        assert_eq!(m.ue_step_flops(64), 0.0);
        let b = batch(&ds, Scheme::RfOnly, 2);
        let pred = m.forward(&b);
        assert!(m.backward(&Tensor::ones(pred.dims())).is_none());
    }

    #[test]
    fn payload_matches_paper_formula() {
        // 16×16 images, 4×4 pooling -> 16 px; B=8, R=8, L=4.
        let m = model(Scheme::ImgRf, PoolingDim::new(4, 4));
        assert_eq!(m.uplink_payload_bits(8), (16 * 8 * 8 * 4) as u64);
        assert_eq!(m.downlink_payload_bits(8), m.uplink_payload_bits(8));
    }

    #[test]
    fn fused_features_place_rf_last() {
        let ds = dataset();
        let mut m = model(Scheme::ImgRf, PoolingDim::new(16, 16)); // 1 px
        let b = batch(&ds, Scheme::ImgRf, 2);
        // Run forward, then inspect the fusion directly.
        let _ = m.forward(&b);
        let ue = m.ue.as_mut().unwrap();
        let pooled = ue.forward(b.images.as_ref().unwrap());
        let q = m.quantizer.quantize(&pooled);
        let f = m.fuse(Some(&q), &b.powers_norm, 2, 4);
        assert_eq!(f.dims(), &[2, 4, 2]);
        for bi in 0..2 {
            for t in 0..4 {
                assert_eq!(f.at(&[bi, t, 0]), q.data()[bi * 4 + t]);
                assert_eq!(f.at(&[bi, t, 1]), b.powers_norm.at(&[bi, t]));
            }
        }
    }

    #[test]
    fn quantized_activations_lie_on_grid() {
        let ds = dataset();
        let mut m = model(Scheme::ImgOnly, PoolingDim::new(4, 4));
        let b = batch(&ds, Scheme::ImgOnly, 2);
        let _ = m.forward(&b);
        // Re-run the UE by hand and check the quantized grid.
        let ue = m.ue.as_mut().unwrap();
        let pooled = ue.forward(b.images.as_ref().unwrap());
        let q = m.quantizer.quantize(&pooled);
        for &v in q.data() {
            let steps = v * 255.0;
            assert!((steps - steps.round()).abs() < 1e-4);
        }
    }

    #[test]
    fn one_training_step_reduces_loss() {
        use sl_nn::{mse_loss, Adam, Optimizer};
        let ds = dataset();
        let mut m = model(Scheme::ImgRf, PoolingDim::new(16, 16));
        let b = batch(&ds, Scheme::ImgRf, 16);
        let mut opt_ue = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let mut opt_bs = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let pred = m.forward(&b);
            let l = mse_loss(&pred, &b.targets_norm);
            m.backward(&l.grad);
            opt_ue.step(&mut m.ue_params_and_grads());
            opt_bs.step(&mut m.bs_params_and_grads());
            m.zero_grads();
            first.get_or_insert(l.loss);
            last = l.loss;
        }
        assert!(
            last < first.unwrap(),
            "fixed-batch loss must decrease: {first:?} -> {last}"
        );
    }

    #[test]
    fn parameter_count_sums_halves() {
        let mut m = model(Scheme::ImgRf, PoolingDim::new(4, 4));
        let mut ue_only = model(Scheme::ImgOnly, PoolingDim::new(4, 4));
        let mut rf_only = model(Scheme::RfOnly, PoolingDim::new(4, 4));
        assert!(m.parameter_count() > rf_only.parameter_count());
        // Img and Img+RF differ only in the LSTM input width.
        assert!(m.parameter_count() > ue_only.parameter_count());
    }
}
