//! Trained-model persistence.
//!
//! Saves and restores the parameters of a [`SplitModel`] so a model
//! trained once (minutes) can be deployed many times (milliseconds).
//! Two on-disk layouts share one canonical tensor order (UE half first,
//! then BS half) and one validation path:
//!
//! * the legacy whole-file format (`.slw`): a magic header followed by
//!   each parameter tensor (rank, dims, little-endian `f32` data);
//! * the chunked `sl-store` layout ([`SplitModel::save_weights_chunked`]):
//!   a directory holding a checksummed `weights` array plus a
//!   `weights.meta.json` shape table — corruption-detecting and
//!   streamable, the checkpoint-era replacement.
//!
//! [`SplitModel::load_weights_auto`] dispatches on the path kind
//! (directory → chunked, file → legacy), so existing `.slw` files keep
//! loading. Loading validates every shape against the *current*
//! architecture, naming the exact half and tensor that failed, so
//! weights can only be restored into a model built with the same
//! configuration.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use sl_store::{
    read_array, write_array, Codec, DirStorage, StorageRead, StorageWrite, StoreError, StoreMetrics,
};
use sl_telemetry::json::{parse, JsonArray, JsonObject};
use sl_telemetry::Telemetry;
use sl_tensor::ComputePool;

use crate::model::SplitModel;

const MAGIC: &[u8; 8] = b"SLWGHT1\0";

/// Chunked-layout objects inside a weight directory.
const WEIGHTS_ARRAY: &str = "weights";
const WEIGHTS_META: &str = "weights.meta.json";
const WEIGHTS_META_VERSION: u64 = 1;

/// Errors from weight I/O.
#[derive(Debug)]
pub enum WeightIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a weight file.
    BadMagic,
    /// The file's tensors do not match the model's architecture.
    ArchitectureMismatch(String),
    /// Structurally invalid file.
    Corrupt(&'static str),
    /// The chunked store failed (IO, checksum mismatch, bad manifest).
    Store(StoreError),
}

impl std::fmt::Display for WeightIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightIoError::Io(e) => write!(f, "weight I/O error: {e}"),
            WeightIoError::BadMagic => write!(f, "not a SLWGHT1 weight file"),
            WeightIoError::ArchitectureMismatch(what) => {
                write!(f, "weight file does not match model architecture: {what}")
            }
            WeightIoError::Corrupt(what) => write!(f, "corrupt weight file: {what}"),
            WeightIoError::Store(e) => write!(f, "weight store error: {e}"),
        }
    }
}

impl std::error::Error for WeightIoError {}

impl From<io::Error> for WeightIoError {
    fn from(e: io::Error) -> Self {
        WeightIoError::Io(e)
    }
}

impl From<StoreError> for WeightIoError {
    fn from(e: StoreError) -> Self {
        WeightIoError::Store(e)
    }
}

impl SplitModel {
    /// Writes all parameters (UE half first, then BS half) to `path`.
    pub fn save_weights(&mut self, path: impl AsRef<Path>) -> Result<(), WeightIoError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        // Snapshot the parameters (UE half first, then BS half) — the
        // canonical order `load_weights` restores in.
        let mut tensors = Vec::new();
        for (p, _) in self.ue_params_and_grads() {
            tensors.push(p.clone());
        }
        for (p, _) in self.bs_params_and_grads() {
            tensors.push(p.clone());
        }
        buf.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
        for t in &tensors {
            buf.extend_from_slice(&(t.shape().rank() as u32).to_le_bytes());
            for &d in t.dims() {
                buf.extend_from_slice(&(d as u32).to_le_bytes());
            }
            for &v in t.data() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut file = fs::File::create(path)?;
        file.write_all(&buf)?;
        Ok(())
    }

    /// Restores parameters previously written by
    /// [`SplitModel::save_weights`] into this model.
    ///
    /// The model must have been constructed with the same scheme,
    /// pooling, sizes and cell type; any shape mismatch is rejected.
    pub fn load_weights(&mut self, path: impl AsRef<Path>) -> Result<(), WeightIoError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 12 || &bytes[..8] != MAGIC {
            return Err(WeightIoError::BadMagic);
        }
        let mut off = 8usize;
        let read_u32 = |bytes: &[u8], off: &mut usize| -> Result<u32, WeightIoError> {
            if *off + 4 > bytes.len() {
                return Err(WeightIoError::Corrupt("truncated header"));
            }
            let v = u32::from_le_bytes([
                bytes[*off],
                bytes[*off + 1],
                bytes[*off + 2],
                bytes[*off + 3],
            ]);
            *off += 4;
            Ok(v)
        };
        let count = read_u32(&bytes, &mut off)? as usize;

        // Parse all tensors first, then commit — a half-applied load
        // would leave the model in a broken state.
        let mut parsed: Vec<(Vec<usize>, Vec<f32>)> = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = read_u32(&bytes, &mut off)? as usize;
            if rank > 8 {
                return Err(WeightIoError::Corrupt("implausible tensor rank"));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u32(&bytes, &mut off)? as usize);
            }
            let numel: usize = dims.iter().product();
            if off + numel * 4 > bytes.len() {
                return Err(WeightIoError::Corrupt("truncated tensor data"));
            }
            let data: Vec<f32> = (0..numel)
                .map(|i| {
                    let o = off + i * 4;
                    f32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
                })
                .collect();
            off += numel * 4;
            parsed.push((dims, data));
        }
        if off != bytes.len() {
            return Err(WeightIoError::Corrupt("trailing bytes"));
        }

        self.apply_parsed(parsed)
    }

    /// Validates `parsed` tensors against the current architecture and
    /// commits them — the shared tail of every load path. A mismatch
    /// names the half (UE/BS) and the per-half tensor index that failed.
    fn apply_parsed(&mut self, parsed: Vec<(Vec<usize>, Vec<f32>)>) -> Result<(), WeightIoError> {
        let mut expected = 0usize;
        {
            let ue = self.ue_params_and_grads().len();
            let bs = self.bs_params_and_grads().len();
            expected += ue + bs;
        }
        if parsed.len() != expected {
            return Err(WeightIoError::ArchitectureMismatch(format!(
                "file has {} tensors, model has {expected}",
                parsed.len()
            )));
        }

        // Validate shapes, naming exactly which tensor of which half
        // disagrees (satisfying "which layer failed?" at 2 a.m.).
        {
            let mut idx = 0usize;
            let mut check = |side: &str,
                             params: Vec<(&mut sl_tensor::Tensor, &mut sl_tensor::Tensor)>|
             -> Result<(), WeightIoError> {
                for (i, (p, _)) in params.into_iter().enumerate() {
                    let (dims, _) = &parsed[idx];
                    if p.dims() != &dims[..] {
                        return Err(WeightIoError::ArchitectureMismatch(format!(
                            "{side} tensor {i} (file tensor {idx}): file {:?} vs model {:?}",
                            dims,
                            p.dims()
                        )));
                    }
                    idx += 1;
                }
                Ok(())
            };
            check("UE", self.ue_params_and_grads())?;
            check("BS", self.bs_params_and_grads())?;
        }

        // Commit.
        let mut idx = 0usize;
        for (p, _) in self.ue_params_and_grads() {
            p.data_mut().copy_from_slice(&parsed[idx].1);
            idx += 1;
        }
        for (p, _) in self.bs_params_and_grads() {
            p.data_mut().copy_from_slice(&parsed[idx].1);
            idx += 1;
        }
        Ok(())
    }

    /// Writes all parameters into `dir` as a chunked, checksummed
    /// `sl-store` array plus a shape-table sidecar. The array manifest
    /// is written last as the commit point; an interrupted save never
    /// looks like a valid weight directory.
    pub fn save_weights_chunked(&mut self, dir: impl AsRef<Path>) -> Result<(), WeightIoError> {
        let mut storage = DirStorage::create(dir.as_ref())?;
        let mut shapes = JsonArray::new();
        let mut flat = Vec::new();
        {
            let mut record = |params: Vec<(&mut sl_tensor::Tensor, &mut sl_tensor::Tensor)>| {
                for (p, _) in params {
                    let mut dims = JsonArray::new();
                    for &d in p.dims() {
                        dims.push_raw(&d.to_string());
                    }
                    shapes.push_raw(&dims.finish());
                    flat.extend_from_slice(p.data());
                }
            };
            record(self.ue_params_and_grads());
            record(self.bs_params_and_grads());
        }
        let meta = JsonObject::new()
            .u64("version", WEIGHTS_META_VERSION)
            .raw("tensors", &shapes.finish())
            .finish();
        storage.put(WEIGHTS_META, meta.as_bytes())?;
        let mut metrics = StoreMetrics::default();
        write_array(
            &mut storage,
            WEIGHTS_ARRAY,
            1,
            &flat,
            sl_store::configured_chunk_items(1),
            Codec::Raw,
            ComputePool::global(),
            &mut metrics,
        )?;
        Ok(())
    }

    /// Restores parameters from a chunked weight directory written by
    /// [`SplitModel::save_weights_chunked`]. Chunk corruption surfaces
    /// as [`WeightIoError::Store`] with the failing chunk's checksum
    /// detail; shape skew as [`WeightIoError::ArchitectureMismatch`].
    pub fn load_weights_chunked(&mut self, dir: impl AsRef<Path>) -> Result<(), WeightIoError> {
        let storage = DirStorage::create(dir.as_ref())?;
        let meta_bytes = storage.get(WEIGHTS_META)?;
        let meta_text = String::from_utf8(meta_bytes)
            .map_err(|_| WeightIoError::Corrupt("weight meta is not UTF-8"))?;
        let meta =
            parse(&meta_text).map_err(|_| WeightIoError::Corrupt("weight meta is not JSON"))?;
        let version = meta
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or(WeightIoError::Corrupt("weight meta has no version"))?;
        if version != WEIGHTS_META_VERSION {
            return Err(WeightIoError::Corrupt("unsupported weight meta version"));
        }
        let shape_list = meta
            .get("tensors")
            .and_then(|v| v.as_arr())
            .ok_or(WeightIoError::Corrupt("weight meta has no tensor table"))?;
        let mut dims_list: Vec<Vec<usize>> = Vec::with_capacity(shape_list.len());
        for entry in shape_list {
            let dims = entry
                .as_arr()
                .ok_or(WeightIoError::Corrupt("weight meta shape is not an array"))?
                .iter()
                .map(|d| {
                    d.as_u64()
                        .map(|v| v as usize)
                        .ok_or(WeightIoError::Corrupt("weight meta dim is not an integer"))
                })
                .collect::<Result<Vec<usize>, WeightIoError>>()?;
            dims_list.push(dims);
        }

        let mut metrics = StoreMetrics::default();
        let (_, flat) = read_array(&storage, WEIGHTS_ARRAY, ComputePool::global(), &mut metrics)?;
        let total: usize = dims_list.iter().map(|d| d.iter().product::<usize>()).sum();
        if flat.len() != total {
            return Err(WeightIoError::ArchitectureMismatch(format!(
                "weight array holds {} values, shape table declares {total}",
                flat.len()
            )));
        }
        let mut parsed = Vec::with_capacity(dims_list.len());
        let mut at = 0usize;
        for dims in dims_list {
            let n: usize = dims.iter().product();
            parsed.push((dims, flat[at..at + n].to_vec()));
            at += n;
        }
        self.apply_parsed(parsed)
    }

    /// Loads weights from either layout: a directory loads the chunked
    /// `sl-store` format, anything else the legacy whole-file `.slw` —
    /// so pre-chunking weight files keep working unchanged.
    pub fn load_weights_auto(&mut self, path: impl AsRef<Path>) -> Result<(), WeightIoError> {
        if path.as_ref().is_dir() {
            self.load_weights_chunked(path)
        } else {
            self.load_weights(path)
        }
    }

    /// [`SplitModel::load_weights_auto`] with failures routed through
    /// telemetry like every other runtime warning (the error — including
    /// which half/tensor mismatched — lands in the journal as a `warn`
    /// event before being returned).
    pub fn load_weights_logged(
        &mut self,
        path: impl AsRef<Path>,
        tele: &mut Telemetry,
    ) -> Result<(), WeightIoError> {
        match self.load_weights_auto(path.as_ref()) {
            Ok(()) => Ok(()),
            Err(e) => {
                tele.warn(&format!(
                    "weight load from {} failed: {e}",
                    path.as_ref().display()
                ));
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooling::PoolingDim;
    use crate::scheme::Scheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_tensor::Tensor;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slw_test_{name}_{}.slw", std::process::id()))
    }

    fn model(seed: u64) -> SplitModel {
        SplitModel::new(
            Scheme::ImgRf,
            PoolingDim::new(4, 4),
            8,
            8,
            3,
            2,
            4,
            8,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    fn predict(m: &mut SplitModel) -> f32 {
        let frame = Tensor::from_fn([8, 8], |i| (i as f32 / 63.0).sin().abs());
        let feats: Vec<Tensor> = (0..3).map(|_| m.encode_frame(&frame)).collect();
        m.predict_window(&feats, &[0.1, -0.2, 0.3])
    }

    #[test]
    fn round_trip_restores_predictions() {
        let mut a = model(1);
        let mut b = model(2); // different init
        let before_a = predict(&mut a);
        let before_b = predict(&mut b);
        assert!(
            (before_a - before_b).abs() > 1e-6,
            "models must differ initially"
        );

        let path = tmp("round_trip");
        a.save_weights(&path).unwrap();
        b.load_weights(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let after_b = predict(&mut b);
        assert!(
            (after_b - before_a).abs() < 1e-6,
            "loaded model must predict like the saved one: {after_b} vs {before_a}"
        );
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = model(3);
        let path = tmp("mismatch");
        a.save_weights(&path).unwrap();
        // Different pooling -> different BS input width.
        let mut other = SplitModel::new(
            Scheme::ImgRf,
            PoolingDim::new(8, 8),
            8,
            8,
            3,
            2,
            4,
            8,
            &mut StdRng::seed_from_u64(4),
        );
        let before = predict(&mut other);
        assert!(matches!(
            other.load_weights(&path),
            Err(WeightIoError::ArchitectureMismatch(_))
        ));
        // Failed load must not corrupt the model.
        assert_eq!(predict(&mut other), before);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatch_error_names_the_half_and_tensor() {
        let mut a = model(8);
        let path = tmp("named_mismatch");
        a.save_weights(&path).unwrap();
        // Different pooling -> the BS half's input width changes while
        // the UE half is untouched; the error must say so.
        let mut other = SplitModel::new(
            Scheme::ImgRf,
            PoolingDim::new(8, 8),
            8,
            8,
            3,
            2,
            4,
            8,
            &mut StdRng::seed_from_u64(9),
        );
        let err = other.load_weights(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("BS tensor"), "unhelpful mismatch: {msg}");
        assert!(!msg.contains("UE tensor"), "wrong half blamed: {msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_round_trip_restores_predictions() {
        let mut a = model(10);
        let mut b = model(11);
        let before_a = predict(&mut a);
        assert!((before_a - predict(&mut b)).abs() > 1e-6);

        let dir = std::env::temp_dir().join(format!("slw_chunked_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        a.save_weights_chunked(&dir).unwrap();
        // The auto loader dispatches on the path kind.
        b.load_weights_auto(&dir).unwrap();
        assert!((predict(&mut b) - before_a).abs() < 1e-6);

        // Chunk corruption is a typed store error, not garbage weights.
        let chunk = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().contains("chunk"))
            .expect("no chunk files written");
        let mut bytes = std::fs::read(chunk.path()).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(chunk.path(), &bytes).unwrap();
        assert!(matches!(
            model(12).load_weights_auto(&dir),
            Err(WeightIoError::Store(sl_store::StoreError::Checksum { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_loader_still_reads_legacy_files() {
        let mut a = model(13);
        let path = tmp("legacy_auto");
        a.save_weights(&path).unwrap();
        let mut b = model(14);
        b.load_weights_auto(&path).unwrap();
        assert!((predict(&mut b) - predict(&mut a)).abs() < 1e-6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn logged_loader_warns_into_the_journal() {
        use sl_telemetry::{MemorySink, Telemetry, TelemetryMode};
        let mut a = model(15);
        let path = tmp("logged_mismatch");
        a.save_weights(&path).unwrap();
        let mut other = SplitModel::new(
            Scheme::ImgRf,
            PoolingDim::new(8, 8),
            8,
            8,
            3,
            2,
            4,
            8,
            &mut StdRng::seed_from_u64(16),
        );
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        assert!(other.load_weights_logged(&path, &mut tele).is_err());
        drop(tele);
        let evs = events.borrow();
        let warn = evs
            .iter()
            .find(|e| e.kind == "warn")
            .expect("no warn event emitted");
        let msg = format!("{warn:?}");
        assert!(msg.contains("BS tensor"), "warn lacks the half: {msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"junk").unwrap();
        assert!(matches!(
            model(5).load_weights(&path),
            Err(WeightIoError::BadMagic)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncation() {
        let mut a = model(6);
        let path = tmp("trunc");
        a.save_weights(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            model(7).load_weights(&path),
            Err(WeightIoError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
