//! Trained-model persistence.
//!
//! Saves and restores the parameters of a [`SplitModel`] so a model
//! trained once (minutes) can be deployed many times (milliseconds).
//! The format (`.slw`) mirrors the trace format of `sl-scene`: a magic
//! header followed by each parameter tensor (rank, dims, little-endian
//! `f32` data) in the model's canonical parameter order. Loading
//! validates every shape against the *current* architecture, so weights
//! can only be restored into a model built with the same configuration.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::model::SplitModel;

const MAGIC: &[u8; 8] = b"SLWGHT1\0";

/// Errors from weight I/O.
#[derive(Debug)]
pub enum WeightIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a weight file.
    BadMagic,
    /// The file's tensors do not match the model's architecture.
    ArchitectureMismatch(String),
    /// Structurally invalid file.
    Corrupt(&'static str),
}

impl std::fmt::Display for WeightIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightIoError::Io(e) => write!(f, "weight I/O error: {e}"),
            WeightIoError::BadMagic => write!(f, "not a SLWGHT1 weight file"),
            WeightIoError::ArchitectureMismatch(what) => {
                write!(f, "weight file does not match model architecture: {what}")
            }
            WeightIoError::Corrupt(what) => write!(f, "corrupt weight file: {what}"),
        }
    }
}

impl std::error::Error for WeightIoError {}

impl From<io::Error> for WeightIoError {
    fn from(e: io::Error) -> Self {
        WeightIoError::Io(e)
    }
}

impl SplitModel {
    /// Writes all parameters (UE half first, then BS half) to `path`.
    pub fn save_weights(&mut self, path: impl AsRef<Path>) -> Result<(), WeightIoError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        // Snapshot the parameters (UE half first, then BS half) — the
        // canonical order `load_weights` restores in.
        let mut tensors = Vec::new();
        for (p, _) in self.ue_params_and_grads() {
            tensors.push(p.clone());
        }
        for (p, _) in self.bs_params_and_grads() {
            tensors.push(p.clone());
        }
        buf.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
        for t in &tensors {
            buf.extend_from_slice(&(t.shape().rank() as u32).to_le_bytes());
            for &d in t.dims() {
                buf.extend_from_slice(&(d as u32).to_le_bytes());
            }
            for &v in t.data() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut file = fs::File::create(path)?;
        file.write_all(&buf)?;
        Ok(())
    }

    /// Restores parameters previously written by
    /// [`SplitModel::save_weights`] into this model.
    ///
    /// The model must have been constructed with the same scheme,
    /// pooling, sizes and cell type; any shape mismatch is rejected.
    pub fn load_weights(&mut self, path: impl AsRef<Path>) -> Result<(), WeightIoError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 12 || &bytes[..8] != MAGIC {
            return Err(WeightIoError::BadMagic);
        }
        let mut off = 8usize;
        let read_u32 = |bytes: &[u8], off: &mut usize| -> Result<u32, WeightIoError> {
            if *off + 4 > bytes.len() {
                return Err(WeightIoError::Corrupt("truncated header"));
            }
            let v = u32::from_le_bytes([
                bytes[*off],
                bytes[*off + 1],
                bytes[*off + 2],
                bytes[*off + 3],
            ]);
            *off += 4;
            Ok(v)
        };
        let count = read_u32(&bytes, &mut off)? as usize;

        // Parse all tensors first, then commit — a half-applied load
        // would leave the model in a broken state.
        let mut parsed: Vec<(Vec<usize>, Vec<f32>)> = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = read_u32(&bytes, &mut off)? as usize;
            if rank > 8 {
                return Err(WeightIoError::Corrupt("implausible tensor rank"));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u32(&bytes, &mut off)? as usize);
            }
            let numel: usize = dims.iter().product();
            if off + numel * 4 > bytes.len() {
                return Err(WeightIoError::Corrupt("truncated tensor data"));
            }
            let data: Vec<f32> = (0..numel)
                .map(|i| {
                    let o = off + i * 4;
                    f32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
                })
                .collect();
            off += numel * 4;
            parsed.push((dims, data));
        }
        if off != bytes.len() {
            return Err(WeightIoError::Corrupt("trailing bytes"));
        }

        let mut expected = 0usize;
        {
            let ue = self.ue_params_and_grads().len();
            let bs = self.bs_params_and_grads().len();
            expected += ue + bs;
        }
        if parsed.len() != expected {
            return Err(WeightIoError::ArchitectureMismatch(format!(
                "file has {} tensors, model has {expected}",
                parsed.len()
            )));
        }

        // Validate shapes.
        {
            let mut idx = 0usize;
            let mut check =
                |params: Vec<(&mut sl_tensor::Tensor, &mut sl_tensor::Tensor)>| -> Result<(), WeightIoError> {
                    for (p, _) in params {
                        let (dims, _) = &parsed[idx];
                        if p.dims() != &dims[..] {
                            return Err(WeightIoError::ArchitectureMismatch(format!(
                                "tensor {idx}: file {:?} vs model {:?}",
                                dims,
                                p.dims()
                            )));
                        }
                        idx += 1;
                    }
                    Ok(())
                };
            check(self.ue_params_and_grads())?;
            check(self.bs_params_and_grads())?;
        }

        // Commit.
        let mut idx = 0usize;
        for (p, _) in self.ue_params_and_grads() {
            p.data_mut().copy_from_slice(&parsed[idx].1);
            idx += 1;
        }
        for (p, _) in self.bs_params_and_grads() {
            p.data_mut().copy_from_slice(&parsed[idx].1);
            idx += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooling::PoolingDim;
    use crate::scheme::Scheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_tensor::Tensor;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slw_test_{name}_{}.slw", std::process::id()))
    }

    fn model(seed: u64) -> SplitModel {
        SplitModel::new(
            Scheme::ImgRf,
            PoolingDim::new(4, 4),
            8,
            8,
            3,
            2,
            4,
            8,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    fn predict(m: &mut SplitModel) -> f32 {
        let frame = Tensor::from_fn([8, 8], |i| (i as f32 / 63.0).sin().abs());
        let feats: Vec<Tensor> = (0..3).map(|_| m.encode_frame(&frame)).collect();
        m.predict_window(&feats, &[0.1, -0.2, 0.3])
    }

    #[test]
    fn round_trip_restores_predictions() {
        let mut a = model(1);
        let mut b = model(2); // different init
        let before_a = predict(&mut a);
        let before_b = predict(&mut b);
        assert!(
            (before_a - before_b).abs() > 1e-6,
            "models must differ initially"
        );

        let path = tmp("round_trip");
        a.save_weights(&path).unwrap();
        b.load_weights(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let after_b = predict(&mut b);
        assert!(
            (after_b - before_a).abs() < 1e-6,
            "loaded model must predict like the saved one: {after_b} vs {before_a}"
        );
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = model(3);
        let path = tmp("mismatch");
        a.save_weights(&path).unwrap();
        // Different pooling -> different BS input width.
        let mut other = SplitModel::new(
            Scheme::ImgRf,
            PoolingDim::new(8, 8),
            8,
            8,
            3,
            2,
            4,
            8,
            &mut StdRng::seed_from_u64(4),
        );
        let before = predict(&mut other);
        assert!(matches!(
            other.load_weights(&path),
            Err(WeightIoError::ArchitectureMismatch(_))
        ));
        // Failed load must not corrupt the model.
        assert_eq!(predict(&mut other), before);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"junk").unwrap();
        assert!(matches!(
            model(5).load_weights(&path),
            Err(WeightIoError::BadMagic)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncation() {
        let mut a = model(6);
        let path = tmp("trunc");
        a.save_weights(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            model(7).load_weights(&path),
            Err(WeightIoError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
