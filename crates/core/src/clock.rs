//! The simulated training clock.
//!
//! Fig. 3a's x-axis is *elapsed wall-clock training time*, which in split
//! learning is compute time **plus** the airtime of the cut-layer
//! transfers. Both components are modelled deterministically: compute as
//! FLOP counts over configurable device rates, airtime as slot counts
//! from the `sl-channel` simulator. This keeps the learning curves
//! reproducible and independent of the host machine.

/// Modelled device throughputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// UE-side sustained throughput in FLOP/s.
    pub ue_flops_per_s: f64,
    /// BS-side sustained throughput in FLOP/s.
    pub bs_flops_per_s: f64,
}

impl ComputeModel {
    /// Defaults sized like the paper's setup (an embedded-GPU-class UE
    /// and a server-class BS): fast enough that communication dominates
    /// for bulky payloads, slow enough that compute is not free.
    pub fn paper() -> Self {
        ComputeModel {
            ue_flops_per_s: 200e9,
            bs_flops_per_s: 1e12,
        }
    }

    /// Seconds the UE needs for `flops`.
    pub fn ue_seconds(&self, flops: f64) -> f64 {
        assert!(
            self.ue_flops_per_s > 0.0,
            "ComputeModel: UE rate must be positive"
        );
        flops / self.ue_flops_per_s
    }

    /// Seconds the BS needs for `flops`.
    pub fn bs_seconds(&self, flops: f64) -> f64 {
        assert!(
            self.bs_flops_per_s > 0.0,
            "ComputeModel: BS rate must be positive"
        );
        flops / self.bs_flops_per_s
    }
}

/// Accumulates simulated elapsed time, split by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    compute_s: f64,
    airtime_s: f64,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Rebuilds a clock from checkpointed components (the exact values
    /// previously read through [`SimClock::compute_s`] /
    /// [`SimClock::airtime_s`]).
    pub fn from_parts(compute_s: f64, airtime_s: f64) -> Self {
        assert!(
            compute_s >= 0.0 && compute_s.is_finite(),
            "SimClock: bad compute time"
        );
        assert!(
            airtime_s >= 0.0 && airtime_s.is_finite(),
            "SimClock: bad airtime"
        );
        SimClock {
            compute_s,
            airtime_s,
        }
    }

    /// Adds compute time.
    pub fn add_compute(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "SimClock: bad compute time"
        );
        self.compute_s += seconds;
    }

    /// Adds channel airtime.
    pub fn add_airtime(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "SimClock: bad airtime"
        );
        self.airtime_s += seconds;
    }

    /// Total elapsed simulated seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.compute_s + self.airtime_s
    }

    /// Seconds spent computing.
    pub fn compute_s(&self) -> f64 {
        self.compute_s
    }

    /// Seconds spent on the air.
    pub fn airtime_s(&self) -> f64 {
        self.airtime_s
    }

    /// Fraction of elapsed time spent communicating (0 when idle).
    pub fn airtime_fraction(&self) -> f64 {
        let total = self.elapsed_s();
        if total == 0.0 {
            0.0
        } else {
            self.airtime_s / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_components() {
        let mut c = SimClock::new();
        c.add_compute(0.5);
        c.add_airtime(1.5);
        c.add_compute(0.25);
        assert!((c.elapsed_s() - 2.25).abs() < 1e-12);
        assert!((c.compute_s() - 0.75).abs() < 1e-12);
        assert!((c.airtime_s() - 1.5).abs() < 1e-12);
        assert!((c.airtime_fraction() - 1.5 / 2.25).abs() < 1e-12);
    }

    #[test]
    fn zero_clock() {
        let c = SimClock::new();
        assert_eq!(c.elapsed_s(), 0.0);
        assert_eq!(c.airtime_fraction(), 0.0);
    }

    #[test]
    fn compute_model_rates() {
        let m = ComputeModel::paper();
        assert!((m.ue_seconds(200e9) - 1.0).abs() < 1e-12);
        assert!((m.bs_seconds(1e12) - 1.0).abs() < 1e-12);
        assert!(
            m.ue_seconds(1e9) > m.bs_seconds(1e9),
            "BS is the faster device"
        );
    }

    #[test]
    #[should_panic(expected = "bad compute time")]
    fn rejects_negative_time() {
        SimClock::new().add_compute(-1.0);
    }
}
