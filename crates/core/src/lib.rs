//! # `sl-core` — multimodal split learning for mmWave power prediction
//!
//! The paper's primary contribution, assembled from the workspace
//! substrates: a neural network **split across the wireless link** —
//! CNN layers on the mmWave UE processing depth-camera images, an
//! average-pooling *cut layer* compressing the CNN output to as little as
//! **one pixel**, and LSTM + dense layers at the BS fusing the received
//! image features with the RF received-power history to predict the
//! received power `T = 120 ms` ahead.
//!
//! * [`PoolingDim`] — the cut-layer compression knob (`1×1 … 40×40`).
//! * [`Scheme`] — `Img+RF` (the proposal) and the paper's two baselines,
//!   `Img`-only and `RF`-only.
//! * [`UeNetwork`] / [`BsNetwork`] / [`SplitModel`] — the two network
//!   halves and their composition, including `R`-bit cut-layer
//!   quantization ([`Quantizer`]).
//! * [`SplitTrainer`] — communication-aware training: every SGD step
//!   ships the forward activations uplink and the cut-layer gradients
//!   downlink through `sl-channel`'s slot-level simulator, and a
//!   [`SimClock`] accrues modelled compute time plus simulated airtime —
//!   producing the paper's "elapsed time in training" axis (Fig. 3a).
//! * [`TrainOutcome`] / [`CurvePoint`] — learning curves, stop-reason
//!   bookkeeping, and prediction traces for Fig. 3b.
//! * [`HealthMonitor`] — training-health watchdog: tracks the loss EMA,
//!   gradient norms, update ratios and non-finite counts each step and
//!   (per `SLM_HEALTH=warn|abort|off`) warns on or aborts demonstrably
//!   diverging runs.
//! * [`WiringSpec`] — pre-run static validation of the
//!   UE→pool→payload→BS shapes: propagates symbolic shapes through the
//!   actual layer stacks so a miswired configuration fails with a
//!   per-layer trace before training starts (also `slm-lint --shapes`).
//! * [`StreamingDeployment`] / [`LinkPolicy`] — deployment: per-frame
//!   streaming inference over the simulated uplink and the proactive
//!   link controller the paper's predictions exist to enable.
//!
//! See `DESIGN.md` for the experiment map and `EXPERIMENTS.md` for
//! paper-vs-measured results.

mod baseline;
mod batch;
mod bs;
mod checkpoint;
mod clock;
mod config;
mod deploy;
mod health;
mod model;
mod persist;
mod pooling;
mod quantize;
mod rng;
mod scheme;
mod shapes;
mod trainer;
mod ue;

pub use baseline::LinearRfBaseline;
pub use batch::Batch;
pub use bs::{BsNetwork, RnnCell};
pub use checkpoint::{CheckpointError, TrainCheckpoint, CHECKPOINT_VERSION};
pub use clock::{ComputeModel, SimClock};
pub use config::{ExperimentConfig, PAPER_CALIBRATED_UPLINK_SNR_DB};
pub use deploy::{
    simulate_link_policy, LinkPolicy, OutageReport, StreamPoint, StreamReport, StreamingDeployment,
};
pub use health::{HealthAction, HealthConfig, HealthMonitor, HealthVerdict, StepStats};
pub use model::SplitModel;
pub use persist::WeightIoError;
pub use pooling::PoolingDim;
pub use quantize::Quantizer;
pub use rng::CountingRng;
pub use scheme::Scheme;
pub use shapes::{WiringError, WiringReport, WiringSpec};
pub use trainer::{
    subsample, update_ratio, CurvePoint, PredictionPoint, SplitTrainer, StopReason, TrainOutcome,
};
