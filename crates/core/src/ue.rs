//! The UE-side network: CNN + average-pooling cut layer.

use rand::Rng;

use sl_nn::{Activation, AvgPool2d, Conv2d, Layer, Sequential};
use sl_telemetry::Telemetry;
use sl_tensor::{Padding, Tensor};

use crate::pooling::PoolingDim;

/// Layer count of the convolutional stack before the cut-layer pool
/// (`conv → relu → conv → sigmoid`), i.e. the prefix that produces the
/// Fig. 2 "CNN output image".
pub(crate) const CNN_LAYERS: usize = 4;

/// Builds the UE-side layer stack (the single source of truth for its
/// wiring, shared by [`UeNetwork::new`] and the static shape checker in
/// [`crate::WiringSpec`]). Performs no tiling validation — the shape
/// contracts report non-tiling pools instead.
pub(crate) fn build_stack(channels: usize, pooling: PoolingDim, rng: &mut impl Rng) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(1, channels, 3, Padding::Same, rng))
        .push(Activation::relu())
        .push(Conv2d::new(channels, 1, 3, Padding::Same, rng))
        .push(Activation::sigmoid())
        .push(AvgPool2d::new(pooling.h, pooling.w))
}

/// The network half that stays on the mmWave UE (paper Fig. 1, left):
///
/// `Conv2d(1→C, 3×3, same) → ReLU → Conv2d(C→1, 3×3, same) → Sigmoid →
/// AvgPool2d(w_H × w_W)`
///
/// 'Same' padding keeps the CNN output at the raw image's `N_H × N_W`, so
/// the pooling window alone decides the transmitted feature-map size; the
/// sigmoid bounds the output in `[0, 1]` for `R`-bit quantization.
///
/// The whole stack (pool included) lives in one [`Sequential`], so the
/// per-layer profiler sees every UE-side layer; the pre-pool CNN map is
/// recovered with a partial forward.
pub struct UeNetwork {
    /// The full UE-side stack, cut-layer pool included.
    net: Sequential,
    image_h: usize,
    image_w: usize,
    channels: usize,
    pooling: PoolingDim,
}

impl UeNetwork {
    /// Builds the UE network for `image_h × image_w` inputs with `channels`
    /// hidden channels and the given cut-layer pooling.
    pub fn new(
        image_h: usize,
        image_w: usize,
        channels: usize,
        pooling: PoolingDim,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(channels > 0, "UeNetwork: channels must be positive");
        // Validate tiling up front.
        let _ = pooling.output_size(image_h, image_w);
        let net = build_stack(channels, pooling, rng);
        UeNetwork {
            net,
            image_h,
            image_w,
            channels,
            pooling,
        }
    }

    /// The cut-layer pooling dimension.
    pub fn pooling(&self) -> PoolingDim {
        self.pooling
    }

    /// Pooled feature pixels per image.
    pub fn pooled_pixels(&self) -> usize {
        self.pooling.output_pixels(self.image_h, self.image_w)
    }

    /// Forward pass: `[N, 1, H, W]` images → `[N, 1, H/w_H, W/w_W]`
    /// pooled maps (caching for [`UeNetwork::backward`]).
    pub fn forward(&mut self, images: &Tensor) -> Tensor {
        assert_eq!(
            images.dims()[2..],
            [self.image_h, self.image_w],
            "UeNetwork: image size {} does not match configured {}x{}",
            images.shape(),
            self.image_h,
            self.image_w
        );
        self.net.forward(images)
    }

    /// Backward pass from the cut-layer gradient (as received over the
    /// downlink), accumulating CNN parameter gradients.
    pub fn backward(&mut self, grad_pooled: &Tensor) {
        let _ = self.net.backward(grad_pooled);
    }

    /// The pre-pooling CNN output for one `[H, W]` image — the Fig. 2
    /// "CNN output image" visualization (inference only, no caching).
    pub fn infer_cnn_map(&mut self, image: &Tensor) -> Tensor {
        let x = image.reshape([1, 1, self.image_h, self.image_w]);
        let y = self.net.forward_partial(CNN_LAYERS, &x);
        self.net.zero_grads();
        y.reshape([self.image_h, self.image_w])
    }

    /// The pooled cut-layer output for one `[H, W]` image (inference).
    pub fn infer_pooled_map(&mut self, image: &Tensor) -> Tensor {
        let x = image.reshape([1, 1, self.image_h, self.image_w]);
        let pooled = self.net.forward(&x);
        let (ph, pw) = self.pooling.output_size(self.image_h, self.image_w);
        pooled.reshape([ph, pw])
    }

    /// Parameter/gradient pairs for the UE-side optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.net.params_and_grads()
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    /// Total trainable parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.net.parameter_count()
    }

    /// Turns on per-layer profiling of the UE stack.
    pub fn enable_profiling(&mut self) {
        self.net.enable_profiling();
    }

    /// Turns off per-layer profiling.
    pub fn disable_profiling(&mut self) {
        self.net.disable_profiling();
    }

    /// Publishes accumulated per-layer stats under `{prefix}.layer.*`.
    pub fn publish_profile(&mut self, tele: &mut Telemetry, prefix: &str) {
        self.net.publish_profile(tele, prefix);
    }

    /// Modelled forward FLOPs per image: two 'same' 3×3 convolutions.
    pub fn flops_forward_per_image(&self) -> f64 {
        let px = (self.image_h * self.image_w) as f64;
        let c = self.channels as f64;
        // 2 FLOPs per MAC; conv1: 9·1·C taps, conv2: 9·C·1 taps.
        2.0 * 9.0 * c * px * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(pooling: PoolingDim) -> UeNetwork {
        UeNetwork::new(16, 16, 4, pooling, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn forward_shapes_track_pooling() {
        let mut one_pixel = net(PoolingDim::new(16, 16));
        let out = one_pixel.forward(&Tensor::zeros([6, 1, 16, 16]));
        assert_eq!(out.dims(), &[6, 1, 1, 1]);

        let mut raw = net(PoolingDim::RAW);
        let out = raw.forward(&Tensor::zeros([2, 1, 16, 16]));
        assert_eq!(out.dims(), &[2, 1, 16, 16]);
    }

    #[test]
    fn output_in_unit_interval() {
        let mut n = net(PoolingDim::new(4, 4));
        let mut rng = StdRng::seed_from_u64(2);
        let x = sl_tensor::uniform([3, 1, 16, 16], 0.0, 1.0, &mut rng);
        let y = n.forward(&x);
        assert!(
            y.min() >= 0.0 && y.max() <= 1.0,
            "sigmoid+avgpool must stay in [0,1]"
        );
    }

    #[test]
    fn backward_accumulates_conv_grads() {
        let mut n = net(PoolingDim::new(4, 4));
        let x = Tensor::ones([2, 1, 16, 16]);
        let y = n.forward(&x);
        n.backward(&Tensor::ones(y.dims()));
        let grads_nonzero = n.params_and_grads().iter().any(|(_, g)| g.sum_sq() > 0.0);
        assert!(grads_nonzero, "backward must reach the conv weights");
        n.zero_grads();
        assert!(n.params_and_grads().iter().all(|(_, g)| g.sum_sq() == 0.0));
    }

    #[test]
    fn infer_maps_are_consistent() {
        let mut n = net(PoolingDim::new(4, 4));
        let mut rng = StdRng::seed_from_u64(3);
        let img = sl_tensor::uniform([16, 16], 0.0, 1.0, &mut rng);
        let full = n.infer_cnn_map(&img);
        let pooled = n.infer_pooled_map(&img);
        assert_eq!(full.dims(), &[16, 16]);
        assert_eq!(pooled.dims(), &[4, 4]);
        // Pooling the full map by hand must give the pooled map.
        let by_hand = sl_tensor::avg_pool2d(&full.reshape([1, 1, 16, 16]), 4, 4);
        for (a, b) in by_hand.data().iter().zip(pooled.data()) {
            assert!((a - b).abs() < 1e-6);
        }
        // Global mean is invariant under average pooling.
        assert!((full.mean() - pooled.mean()).abs() < 1e-5);
    }

    #[test]
    fn parameter_count_formula() {
        let mut n = net(PoolingDim::RAW);
        // conv1: 4·1·9+4, conv2: 1·4·9+1.
        assert_eq!(n.parameter_count(), 40 + 37);
    }

    #[test]
    fn flops_scale_with_channels() {
        let narrow = net(PoolingDim::RAW);
        let wide = UeNetwork::new(16, 16, 8, PoolingDim::RAW, &mut StdRng::seed_from_u64(4));
        assert!(
            (wide.flops_forward_per_image() / narrow.flops_forward_per_image() - 2.0).abs() < 1e-9
        );
    }
}
