//! The BS-side network: LSTM over the fused sequence + dense head.

use rand::Rng;

use sl_nn::{Dense, Gru, Layer, Lstm, Sequential};
use sl_telemetry::Telemetry;
use sl_tensor::Tensor;

/// Which recurrent cell the BS half uses.
///
/// The paper only says "recurrent NN layers"; LSTM is the default and
/// GRU is provided for the cell-type ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RnnCell {
    /// Long short-term memory (default).
    #[default]
    Lstm,
    /// Gated recurrent unit.
    Gru,
}

impl RnnCell {
    /// Gate count factor for the FLOP model (4 gate blocks for LSTM, 3
    /// for GRU).
    fn gate_blocks(self) -> f64 {
        match self {
            RnnCell::Lstm => 4.0,
            RnnCell::Gru => 3.0,
        }
    }
}

/// The network half that runs at the BS (paper Fig. 1, right): a
/// recurrent cell over the length-`L` sequence of per-step features
/// (pooled image pixels and/or the RF received power), and a dense head
/// mapping the final hidden state to the predicted (normalized) future
/// received power.
///
/// Both layers live in one [`Sequential`], so the per-layer profiler
/// sees the recurrent cell and the head separately.
pub struct BsNetwork {
    net: Sequential,
    feature_dim: usize,
    hidden_dim: usize,
    cell: RnnCell,
}

/// Builds the BS-side layer stack (the single source of truth for its
/// wiring, shared by [`BsNetwork::with_cell`] and the static shape
/// checker in [`crate::WiringSpec`]).
pub(crate) fn build_stack(
    feature_dim: usize,
    hidden_dim: usize,
    cell: RnnCell,
    rng: &mut impl Rng,
) -> Sequential {
    match cell {
        RnnCell::Lstm => Sequential::new().push(Lstm::new(feature_dim, hidden_dim, rng)),
        RnnCell::Gru => Sequential::new().push(Gru::new(feature_dim, hidden_dim, rng)),
    }
    .push(Dense::new(hidden_dim, 1, rng))
}

impl BsNetwork {
    /// Builds the BS network with the default LSTM cell.
    pub fn new(feature_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        BsNetwork::with_cell(feature_dim, hidden_dim, RnnCell::Lstm, rng)
    }

    /// Builds the BS network with an explicit recurrent cell type.
    pub fn with_cell(
        feature_dim: usize,
        hidden_dim: usize,
        cell: RnnCell,
        rng: &mut impl Rng,
    ) -> Self {
        let net = build_stack(feature_dim, hidden_dim, cell, rng);
        BsNetwork {
            net,
            feature_dim,
            hidden_dim,
            cell,
        }
    }

    /// Per-step input feature count.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Recurrent hidden units.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The configured cell type.
    pub fn cell(&self) -> RnnCell {
        self.cell
    }

    /// Forward pass: `[B, L, F]` feature sequences → `[B, 1]` predicted
    /// normalized power.
    pub fn forward(&mut self, features: &Tensor) -> Tensor {
        self.net.forward(features)
    }

    /// Backward pass from the prediction gradient; returns the gradient
    /// with respect to the `[B, L, F]` input features (the part that must
    /// travel back over the downlink).
    pub fn backward(&mut self, grad_pred: &Tensor) -> Tensor {
        self.net.backward(grad_pred)
    }

    /// Parameter/gradient pairs for the BS-side optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.net.params_and_grads()
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    /// Total trainable parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.net.parameter_count()
    }

    /// Turns on per-layer profiling of the BS stack.
    pub fn enable_profiling(&mut self) {
        self.net.enable_profiling();
    }

    /// Turns off per-layer profiling.
    pub fn disable_profiling(&mut self) {
        self.net.disable_profiling();
    }

    /// Publishes accumulated per-layer stats under `{prefix}.layer.*`.
    pub fn publish_profile(&mut self, tele: &mut Telemetry, prefix: &str) {
        self.net.publish_profile(tele, prefix);
    }

    /// Modelled forward FLOPs per sequence of length `seq_len`.
    pub fn flops_forward_per_sequence(&self, seq_len: usize) -> f64 {
        let h = self.hidden_dim() as f64;
        let f = self.feature_dim() as f64;
        // Per step: gate matmuls 2·(blocks·H)·(F+H) plus ~12H pointwise.
        let per_step = 2.0 * self.cell.gate_blocks() * h * (f + h) + 12.0 * h;
        seq_len as f64 * per_step + 2.0 * h // head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut net = BsNetwork::new(2, 8, &mut StdRng::seed_from_u64(1));
        let out = net.forward(&Tensor::zeros([5, 4, 2]));
        assert_eq!(out.dims(), &[5, 1]);
        assert_eq!(net.feature_dim(), 2);
        assert_eq!(net.hidden_dim(), 8);
    }

    #[test]
    fn backward_returns_feature_gradient() {
        let mut net = BsNetwork::new(3, 6, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(3);
        let x = sl_tensor::randn([2, 4, 3], 0.0, 1.0, &mut rng);
        let y = net.forward(&x);
        let gx = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.sum_sq() > 0.0, "input gradient must be nonzero");
    }

    #[test]
    fn parameter_count_formula() {
        let mut net = BsNetwork::new(2, 8, &mut StdRng::seed_from_u64(4));
        // LSTM: 4H·(F) + 4H·H + 4H = 32·2 + 32·8 + 32; head: 8 + 1.
        assert_eq!(net.parameter_count(), 64 + 256 + 32 + 9);
    }

    #[test]
    fn can_learn_sequence_mean() {
        use sl_nn::{mse_loss, Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = BsNetwork::new(1, 8, &mut rng);
        let mut opt = Adam::new(0.02, 0.9, 0.999, 1e-8);
        let x = sl_tensor::randn([32, 4, 1], 0.0, 1.0, &mut rng);
        // Target: mean of the sequence.
        let y = Tensor::from_fn([32, 1], |b| {
            (0..4).map(|t| x.at(&[b, t, 0])).sum::<f32>() / 4.0
        });
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..250 {
            let pred = net.forward(&x);
            let l = mse_loss(&pred, &y);
            net.backward(&l.grad);
            opt.step(&mut net.params_and_grads());
            net.zero_grads();
            first.get_or_insert(l.loss);
            last = l.loss;
        }
        assert!(last < first.unwrap() * 0.1, "{:?} -> {last}", first);
    }

    #[test]
    fn flops_grow_with_sequence_length() {
        let net = BsNetwork::new(2, 8, &mut StdRng::seed_from_u64(6));
        assert!(net.flops_forward_per_sequence(8) > net.flops_forward_per_sequence(4));
    }

    #[test]
    fn gru_cell_variant_works_end_to_end() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = BsNetwork::with_cell(3, 6, RnnCell::Gru, &mut rng);
        assert_eq!(net.cell(), RnnCell::Gru);
        let x = sl_tensor::randn([2, 4, 3], 0.0, 1.0, &mut rng);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[2, 1]);
        let gx = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        // GRU has 3 gate blocks vs the LSTM's 4 -> fewer params & FLOPs.
        let mut lstm = BsNetwork::with_cell(3, 6, RnnCell::Lstm, &mut rng);
        assert!(net.parameter_count() < lstm.parameter_count());
        assert!(net.flops_forward_per_sequence(4) < lstm.flops_forward_per_sequence(4));
        assert_eq!(BsNetwork::new(3, 6, &mut rng).cell(), RnnCell::Lstm);
    }
}
