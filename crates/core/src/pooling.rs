//! The cut-layer pooling dimension.

use std::fmt;

/// The average-pooling window `w_H × w_W` applied to the CNN output
/// before transmission — the paper's single compression/privacy knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolingDim {
    /// Window height `w_H` in pixels.
    pub h: usize,
    /// Window width `w_W` in pixels.
    pub w: usize,
}

impl PoolingDim {
    /// `1×1`: no compression — the full CNN output crosses the link.
    pub const RAW: PoolingDim = PoolingDim { h: 1, w: 1 };
    /// `4×4` pooling (a 10×10 feature map for the 40×40 CNN output).
    pub const MEDIUM: PoolingDim = PoolingDim { h: 4, w: 4 };
    /// `10×10` pooling (a 4×4 feature map).
    pub const COARSE: PoolingDim = PoolingDim { h: 10, w: 10 };
    /// `40×40` pooling: the paper's headline **one-pixel image**.
    pub const ONE_PIXEL: PoolingDim = PoolingDim { h: 40, w: 40 };

    /// The four pooling dimensions evaluated in the paper's Table 1.
    pub const TABLE1: [PoolingDim; 4] = [
        PoolingDim::RAW,
        PoolingDim::MEDIUM,
        PoolingDim::COARSE,
        PoolingDim::ONE_PIXEL,
    ];

    /// Creates a pooling window.
    pub fn new(h: usize, w: usize) -> Self {
        assert!(h > 0 && w > 0, "PoolingDim: window must be non-empty");
        PoolingDim { h, w }
    }

    /// The pooled feature-map size for a `img_h × img_w` CNN output.
    ///
    /// # Panics
    /// Panics when the window does not tile the CNN output.
    pub fn output_size(&self, img_h: usize, img_w: usize) -> (usize, usize) {
        assert!(
            img_h.is_multiple_of(self.h) && img_w.is_multiple_of(self.w),
            "PoolingDim: window {self} does not tile {img_h}x{img_w}"
        );
        (img_h / self.h, img_w / self.w)
    }

    /// Pixels in the pooled feature map.
    pub fn output_pixels(&self, img_h: usize, img_w: usize) -> usize {
        let (h, w) = self.output_size(img_h, img_w);
        h * w
    }

    /// The compression factor `w_H · w_W`.
    pub fn compression_factor(&self) -> usize {
        self.h * self.w
    }

    /// `true` when this window pools a `img_h × img_w` map to one pixel.
    pub fn is_one_pixel(&self, img_h: usize, img_w: usize) -> bool {
        self.output_pixels(img_h, img_w) == 1
    }
}

/// Prints the paper's notation, e.g. `4x4` or `40x40 (1-pixel)`.
impl fmt::Display for PoolingDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PoolingDim::ONE_PIXEL {
            write!(f, "{}x{} (1-pixel)", self.h, self.w)
        } else {
            write!(f, "{}x{}", self.h, self.w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        assert_eq!(PoolingDim::TABLE1.len(), 4);
        assert_eq!(PoolingDim::RAW.output_pixels(40, 40), 1600);
        assert_eq!(PoolingDim::MEDIUM.output_pixels(40, 40), 100);
        assert_eq!(PoolingDim::COARSE.output_pixels(40, 40), 16);
        assert_eq!(PoolingDim::ONE_PIXEL.output_pixels(40, 40), 1);
        assert!(PoolingDim::ONE_PIXEL.is_one_pixel(40, 40));
        assert!(!PoolingDim::MEDIUM.is_one_pixel(40, 40));
    }

    #[test]
    fn output_size_divides() {
        assert_eq!(PoolingDim::new(4, 2).output_size(16, 16), (4, 8));
        assert_eq!(PoolingDim::new(4, 2).compression_factor(), 8);
    }

    #[test]
    fn display_notation() {
        assert_eq!(PoolingDim::MEDIUM.to_string(), "4x4");
        assert_eq!(PoolingDim::ONE_PIXEL.to_string(), "40x40 (1-pixel)");
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn non_tiling_window_panics() {
        PoolingDim::new(3, 3).output_size(40, 40);
    }
}
