//! Resumable training checkpoints over the chunked `sl-store` layer.
//!
//! A checkpoint directory holds the complete trainer state mid-run:
//!
//! * `params`, `opt_{ue,bs}_{m,v}` — chunked, checksummed `sl-store`
//!   arrays (flat `f32`, raw codec: optimizer state is incompressible
//!   noise and exact bits are non-negotiable);
//! * `state.json` — everything scalar, written **last** as the commit
//!   point: config fingerprint (scheme / pooling / seed), epoch and step
//!   counters, Adam step counts, the [`CountingRng`](crate::CountingRng)
//!   draw counts, the [`SimClock`](crate::SimClock) components and the
//!   learning curve so far.
//!
//! Every float in `state.json` is stored as its IEEE-754 bit pattern in
//! hex (the JSON layer parses numbers as `f64`, which cannot round-trip
//! arbitrary `u64` bits) — resuming restores *bitwise* identical state,
//! so an interrupted-and-resumed run produces the same learning curve as
//! an uninterrupted one. That equivalence is the `store-resume` verify
//! stage.

use std::path::Path;

use sl_store::{
    read_array, write_array, Codec, DirStorage, StorageWrite, StoreError, StoreMetrics,
};
use sl_telemetry::json::{parse, JsonArray, JsonObject, JsonValue};
use sl_tensor::ComputePool;

use crate::trainer::CurvePoint;

/// Format version of `state.json`.
pub const CHECKPOINT_VERSION: u64 = 1;

const STATE_OBJECT: &str = "state.json";

/// Why a checkpoint could not be saved or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying chunk store failed (IO, checksum, corruption).
    Store(StoreError),
    /// `state.json` is missing a field or malformed.
    Parse(String),
    /// The checkpoint does not fit this trainer (different config
    /// fingerprint, parameter count, or an unreplayable RNG position).
    Mismatch(String),
    /// The trainer state cannot be serialized (e.g. byte-fill RNG draws,
    /// whose stream consumption is not replayable from call counts).
    Unsupported(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Store(e) => write!(f, "checkpoint store: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint state: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::Unsupported(m) => write!(f, "checkpoint unsupported: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        CheckpointError::Store(e)
    }
}

/// Exported optimizer state: `(t, first moments, second moments)`,
/// exactly [`sl_nn::Adam::export_state`].
pub type AdamState = (u64, Vec<f32>, Vec<f32>);

/// The complete mid-run trainer state (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Config fingerprint: `Scheme` display form.
    pub scheme: String,
    /// Config fingerprint: `PoolingDim` display form.
    pub pooling: String,
    /// Config fingerprint: the training seed.
    pub seed: u64,
    /// Last completed epoch.
    pub epoch: usize,
    /// Steps applied so far.
    pub steps_applied: u64,
    /// Steps voided by payload timeouts so far.
    pub steps_voided: u64,
    /// Current consecutive-void streak (survives epoch boundaries).
    pub consecutive_voids: usize,
    /// Total step attempts (the trace/series sequence counter).
    pub steps_seen: u64,
    /// `next_u32` draws consumed since seeding.
    pub rng_n32: u64,
    /// `next_u64` draws consumed since seeding.
    pub rng_n64: u64,
    /// UE-side Adam state.
    pub opt_ue: AdamState,
    /// BS-side Adam state.
    pub opt_bs: AdamState,
    /// Simulated compute seconds.
    pub compute_s: f64,
    /// Simulated airtime seconds.
    pub airtime_s: f64,
    /// Learning curve up to and including `epoch`.
    pub curve: Vec<CurvePoint>,
    /// All model parameters, flattened UE-first then BS, in
    /// `params_and_grads` order.
    pub params: Vec<f32>,
}

fn hex_u64(v: u64) -> String {
    format!("{v:016x}")
}

fn hex_u32(v: u32) -> String {
    format!("{v:08x}")
}

fn req<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, CheckpointError> {
    obj.get(key)
        .ok_or_else(|| CheckpointError::Parse(format!("missing field {key:?}")))
}

fn req_u64(obj: &JsonValue, key: &str) -> Result<u64, CheckpointError> {
    req(obj, key)?
        .as_u64()
        .ok_or_else(|| CheckpointError::Parse(format!("field {key:?} is not an integer")))
}

fn req_str<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a str, CheckpointError> {
    req(obj, key)?
        .as_str()
        .ok_or_else(|| CheckpointError::Parse(format!("field {key:?} is not a string")))
}

fn req_f64_bits(obj: &JsonValue, key: &str) -> Result<f64, CheckpointError> {
    let s = req_str(obj, key)?;
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Parse(format!("field {key:?} is not hex f64 bits")))
}

fn req_f32_bits(obj: &JsonValue, key: &str) -> Result<f32, CheckpointError> {
    let s = req_str(obj, key)?;
    u32::from_str_radix(s, 16)
        .map(f32::from_bits)
        .map_err(|_| CheckpointError::Parse(format!("field {key:?} is not hex f32 bits")))
}

fn state_json(ck: &TrainCheckpoint) -> String {
    let mut curve = JsonArray::new();
    for p in &ck.curve {
        curve.push_raw(
            &JsonObject::new()
                .u64("epoch", p.epoch as u64)
                .str("elapsed_bits", &hex_u64(p.elapsed_s.to_bits()))
                .str("rmse_bits", &hex_u32(p.val_rmse_db.to_bits()))
                .finish(),
        );
    }
    JsonObject::new()
        .u64("version", CHECKPOINT_VERSION)
        .str("scheme", &ck.scheme)
        .str("pooling", &ck.pooling)
        .u64("seed", ck.seed)
        .u64("epoch", ck.epoch as u64)
        .u64("steps_applied", ck.steps_applied)
        .u64("steps_voided", ck.steps_voided)
        .u64("consecutive_voids", ck.consecutive_voids as u64)
        .u64("steps_seen", ck.steps_seen)
        .u64("rng_n32", ck.rng_n32)
        .u64("rng_n64", ck.rng_n64)
        .u64("opt_ue_t", ck.opt_ue.0)
        .u64("opt_bs_t", ck.opt_bs.0)
        .str("compute_bits", &hex_u64(ck.compute_s.to_bits()))
        .str("airtime_bits", &hex_u64(ck.airtime_s.to_bits()))
        .raw("curve", &curve.finish())
        .finish()
}

/// Saves `ck` into `dir`, creating it if needed. The chunked arrays are
/// written first, `state.json` last — a directory without a readable
/// `state.json` is an aborted save, not a checkpoint.
pub fn save(
    dir: &Path,
    ck: &TrainCheckpoint,
    metrics: &mut StoreMetrics,
) -> Result<(), CheckpointError> {
    let mut storage = DirStorage::create(dir)?;
    let pool = ComputePool::global();
    let chunk = sl_store::configured_chunk_items(1);
    let arrays: [(&str, &[f32]); 5] = [
        ("params", &ck.params),
        ("opt_ue_m", &ck.opt_ue.1),
        ("opt_ue_v", &ck.opt_ue.2),
        ("opt_bs_m", &ck.opt_bs.1),
        ("opt_bs_v", &ck.opt_bs.2),
    ];
    for (name, values) in arrays {
        write_array(
            &mut storage,
            name,
            1,
            values,
            chunk,
            Codec::Raw,
            pool,
            metrics,
        )?;
    }
    storage.put(STATE_OBJECT, state_json(ck).as_bytes())?;
    Ok(())
}

/// Loads a checkpoint previously written by [`save`]. Corruption in any
/// chunk surfaces as [`CheckpointError::Store`]; a malformed or
/// version-skewed `state.json` as [`CheckpointError::Parse`].
pub fn load(dir: &Path, metrics: &mut StoreMetrics) -> Result<TrainCheckpoint, CheckpointError> {
    let storage = DirStorage::create(dir)?;
    let bytes = sl_store::StorageRead::get(&storage, STATE_OBJECT)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| CheckpointError::Parse("state.json is not UTF-8".into()))?;
    let state = parse(&text).map_err(|e| CheckpointError::Parse(format!("state.json: {e}")))?;

    let version = req_u64(&state, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Parse(format!(
            "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }

    let mut curve = Vec::new();
    let curve_val = req(&state, "curve")?;
    let points = curve_val
        .as_arr()
        .ok_or_else(|| CheckpointError::Parse("field \"curve\" is not an array".into()))?;
    for p in points {
        curve.push(CurvePoint {
            elapsed_s: req_f64_bits(p, "elapsed_bits")?,
            epoch: req_u64(p, "epoch")? as usize,
            val_rmse_db: req_f32_bits(p, "rmse_bits")?,
        });
    }

    let pool = ComputePool::global();
    let mut read = |name: &str| -> Result<Vec<f32>, CheckpointError> {
        Ok(read_array(&storage, name, pool, metrics)?.1)
    };
    let params = read("params")?;
    let opt_ue = (
        req_u64(&state, "opt_ue_t")?,
        read("opt_ue_m")?,
        read("opt_ue_v")?,
    );
    let opt_bs = (
        req_u64(&state, "opt_bs_t")?,
        read("opt_bs_m")?,
        read("opt_bs_v")?,
    );

    Ok(TrainCheckpoint {
        scheme: req_str(&state, "scheme")?.to_string(),
        pooling: req_str(&state, "pooling")?.to_string(),
        seed: req_u64(&state, "seed")?,
        epoch: req_u64(&state, "epoch")? as usize,
        steps_applied: req_u64(&state, "steps_applied")?,
        steps_voided: req_u64(&state, "steps_voided")?,
        consecutive_voids: req_u64(&state, "consecutive_voids")? as usize,
        steps_seen: req_u64(&state, "steps_seen")?,
        rng_n32: req_u64(&state, "rng_n32")?,
        rng_n64: req_u64(&state, "rng_n64")?,
        opt_ue,
        opt_bs,
        compute_s: req_f64_bits(&state, "compute_bits")?,
        airtime_s: req_f64_bits(&state, "airtime_bits")?,
        curve,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            scheme: "Img+RF".into(),
            pooling: "4x4".into(),
            seed: 42,
            epoch: 3,
            steps_applied: 31,
            steps_voided: 2,
            consecutive_voids: 1,
            steps_seen: 33,
            rng_n32: 1234,
            rng_n64: 567,
            opt_ue: (31, vec![0.25, -1.5e-7], vec![1e-9, 3.0]),
            opt_bs: (31, vec![f32::MIN_POSITIVE], vec![0.125]),
            compute_s: 12.0 + 3.01e-13,
            airtime_s: 0.24999999999999997,
            curve: vec![
                CurvePoint {
                    elapsed_s: 0.0,
                    epoch: 0,
                    val_rmse_db: 9.123456,
                },
                CurvePoint {
                    elapsed_s: 12.25 + 3.01e-13,
                    epoch: 3,
                    val_rmse_db: 4.000001,
                },
            ],
            params: (0..300).map(|i| (i as f32).sin()).collect(),
        }
    }

    #[test]
    fn round_trips_bitwise_through_a_directory() {
        let dir = std::env::temp_dir().join("slm_ckpt_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut metrics = StoreMetrics::default();
        let ck = sample();
        save(&dir, &ck, &mut metrics).unwrap();
        let back = load(&dir, &mut metrics).unwrap();
        assert_eq!(back, ck);
        // Exact-bit floats survive (PartialEq on f64/f32 would also pass
        // for -0.0 vs 0.0; pin the bits explicitly).
        assert_eq!(back.compute_s.to_bits(), ck.compute_s.to_bits());
        assert_eq!(
            back.curve[1].val_rmse_db.to_bits(),
            ck.curve[1].val_rmse_db.to_bits()
        );
        assert!(metrics.arrays_written >= 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_state_is_a_parse_error_not_a_panic() {
        let dir = std::env::temp_dir().join("slm_ckpt_missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut metrics = StoreMetrics::default();
        match load(&dir, &mut metrics) {
            Err(CheckpointError::Store(StoreError::Missing(_))) => {}
            other => panic!("expected missing-object error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_rejected() {
        let dir = std::env::temp_dir().join("slm_ckpt_version");
        let _ = std::fs::remove_dir_all(&dir);
        let mut metrics = StoreMetrics::default();
        let ck = sample();
        save(&dir, &ck, &mut metrics).unwrap();
        std::fs::write(dir.join(STATE_OBJECT), "{\"version\":99}").unwrap();
        assert!(matches!(
            load(&dir, &mut metrics),
            Err(CheckpointError::Parse(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
