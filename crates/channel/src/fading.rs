//! Multi-path fading process.

use rand::Rng;

/// I.i.d. unit-mean exponential fading — the paper's `h_t`.
///
/// An exponential power gain with unit mean is exactly Rayleigh fading of
/// the field amplitude, the standard rich-scattering model. Samples are
/// independent across slots, as the paper specifies.
#[derive(Debug, Clone, Default)]
pub struct FadingChannel {
    slots_drawn: u64,
}

impl FadingChannel {
    /// Creates a fresh fading process.
    pub fn new() -> Self {
        FadingChannel::default()
    }

    /// Draws the fading gain `h_t` for the next slot (unit-mean
    /// exponential, via inverse-CDF sampling).
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        self.slots_drawn += 1;
        // U ∈ (0, 1]; h = −ln U ~ Exp(1).
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln()
    }

    /// Number of slots sampled so far (diagnostics).
    pub fn slots_drawn(&self) -> u64 {
        self.slots_drawn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_mean_and_exponential_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ch = FadingChannel::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| ch.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
        // Exp(1): P[h > 1] = e^-1 ≈ 0.3679.
        let tail = samples.iter().filter(|&&h| h > 1.0).count() as f64 / n as f64;
        assert!((tail - (-1.0f64).exp()).abs() < 0.01, "tail = {tail}");
        // Exp variance equals 1.
        let var = samples
            .iter()
            .map(|&h| (h - mean) * (h - mean))
            .sum::<f64>()
            / n as f64;
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
        assert_eq!(ch.slots_drawn(), n as u64);
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut ch = FadingChannel::new();
        for _ in 0..10_000 {
            let h = ch.sample(&mut rng);
            assert!(h.is_finite() && h >= 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = FadingChannel::new();
        let mut b = FadingChannel::new();
        let sa: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(13);
            (0..32).map(|_| a.sample(&mut rng)).collect()
        };
        let sb: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(13);
            (0..32).map(|_| b.sample(&mut rng)).collect()
        };
        assert_eq!(sa, sb);
    }
}
