//! Decibel / linear unit conversions.
//!
//! The paper states powers in dBm (`P_UL = 7.5 dBm`, `P_DL = 40 dBm`) and
//! the noise power spectral density in dBm/Hz (`σ² = −174 dBm/Hz`); all
//! internal SNR arithmetic is linear (milliwatts), so these helpers sit at
//! every boundary.

/// Converts a power in dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power in milliwatts to dBm.
///
/// # Panics
/// Panics for non-positive powers, which have no dB representation.
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "mw_to_dbm: power must be positive, got {mw}");
    10.0 * mw.log10()
}

/// Converts a dimensionless ratio in dB to linear scale.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a dimensionless linear ratio to dB.
///
/// # Panics
/// Panics for non-positive ratios.
pub fn linear_to_db(ratio: f64) -> f64 {
    assert!(
        ratio > 0.0,
        "linear_to_db: ratio must be positive, got {ratio}"
    );
    10.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_points() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert!((dbm_to_mw(-30.0) - 0.001).abs() < 1e-12);
        assert!((db_to_linear(3.0) - 1.9952623).abs() < 1e-6);
    }

    #[test]
    fn round_trips() {
        for &dbm in &[-174.0, -45.0, 0.0, 7.5, 40.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        for &db in &[-20.0, 0.0, 76.6] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_power_has_no_dbm() {
        mw_to_dbm(0.0);
    }
}
