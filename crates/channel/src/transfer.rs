//! Slot-level transfer simulation with retransmission.

use rand::Rng;

use sl_telemetry::{Histogram, Telemetry};

use crate::fading::FadingChannel;
use crate::link::LinkConfig;
use crate::{decode_threshold, success_probability};

/// How a payload is mapped onto time slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetransmissionPolicy {
    /// The paper's policy (after [6]): the whole payload is sent in one
    /// slot and retransmitted in subsequent slots until it decodes.
    /// `max_slots` bounds the attempt count so that physically
    /// undecodable payloads (e.g. the 3.3 Mbit 1×1-pooling batch) fail
    /// finitely instead of hanging the simulation.
    WholePayload {
        /// Give up (and report a timeout) after this many slots.
        max_slots: u64,
    },
    /// An engineering extension: the payload is split into
    /// `segment_bits`-sized chunks, each retransmitted independently.
    /// This is how a real link layer would ship a multi-megabit payload;
    /// it turns "never decodes" into "takes many slots", and is used by
    /// the ablation benches.
    Segmented {
        /// Bits per segment (the last segment may be smaller).
        segment_bits: u64,
        /// Give up after this many total slots.
        max_slots: u64,
    },
}

impl RetransmissionPolicy {
    /// The paper's whole-payload policy with a generous slot budget.
    pub fn paper() -> Self {
        RetransmissionPolicy::WholePayload { max_slots: 100_000 }
    }
}

/// Result of one simulated payload transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Delivered after this many slots (≥ 1).
    Delivered {
        /// Total slots consumed, including failed attempts.
        slots: u64,
    },
    /// The slot budget ran out first; `slots` were still consumed.
    TimedOut {
        /// Slots consumed before giving up.
        slots: u64,
    },
}

impl TransferOutcome {
    /// Slots consumed regardless of outcome.
    pub fn slots(&self) -> u64 {
        match *self {
            TransferOutcome::Delivered { slots } | TransferOutcome::TimedOut { slots } => slots,
        }
    }

    /// `true` when the payload arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered { .. })
    }
}

/// Running statistics over many transfers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferStats {
    /// Number of transfers attempted.
    pub transfers: u64,
    /// Number delivered.
    pub delivered: u64,
    /// Total slots consumed.
    pub total_slots: u64,
}

impl TransferStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: TransferOutcome) {
        self.transfers += 1;
        self.total_slots += outcome.slots();
        if outcome.delivered() {
            self.delivered += 1;
        }
    }

    /// Fraction of transfers delivered (1.0 when none attempted).
    pub fn delivery_rate(&self) -> f64 {
        if self.transfers == 0 {
            1.0
        } else {
            self.delivered as f64 / self.transfers as f64
        }
    }

    /// Number of transfers that exhausted their slot budget.
    pub fn timeouts(&self) -> u64 {
        self.transfers - self.delivered
    }

    /// Slots spent beyond the first of each transfer — the retransmission
    /// overhead the link's fading imposes.
    pub fn retransmissions(&self) -> u64 {
        self.total_slots.saturating_sub(self.transfers)
    }

    /// Mean slots per transfer (0.0 when none attempted).
    pub fn mean_slots(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.total_slots as f64 / self.transfers as f64
        }
    }
}

/// Simulates payload transfers over one link direction.
///
/// Owns the fading process for that direction; every transfer draws fresh
/// per-slot fading, checks the Shannon threshold, and either delivers or
/// retransmits according to the policy.
///
/// Every transfer is also recorded into running [`TransferStats`] and a
/// per-transfer slot-count [`Histogram`], so harnesses can publish a
/// link's behaviour into a metrics registry after a run (see
/// [`TransferSimulator::publish_metrics`]) without threading a telemetry
/// handle through the hot path.
#[derive(Debug, Clone)]
pub struct TransferSimulator {
    link: LinkConfig,
    fading: FadingChannel,
    policy: RetransmissionPolicy,
    stats: TransferStats,
    slot_hist: Histogram,
}

impl TransferSimulator {
    /// Creates a simulator for `link` under `policy`.
    pub fn new(link: LinkConfig, policy: RetransmissionPolicy) -> Self {
        TransferSimulator {
            link,
            fading: FadingChannel::new(),
            policy,
            stats: TransferStats::default(),
            slot_hist: Histogram::new(),
        }
    }

    /// The link configuration.
    pub fn link(&self) -> &LinkConfig {
        &self.link
    }

    /// The retransmission policy.
    pub fn policy(&self) -> RetransmissionPolicy {
        self.policy
    }

    /// Whether a single slot carrying `bits` decodes under fading gain `h`.
    fn slot_decodes(&self, bits: f64, h: f64) -> bool {
        let snr = self.link.mean_snr_linear() * h;
        snr > decode_threshold(bits, self.link.bandwidth_hz, self.link.slot_s)
    }

    /// Accumulated statistics over every transfer this simulator ran.
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// The per-transfer slot-count distribution.
    pub fn slot_histogram(&self) -> &Histogram {
        &self.slot_hist
    }

    /// Publishes the accumulated link metrics under `prefix`:
    /// counters `{prefix}.transfers`, `{prefix}.delivered`,
    /// `{prefix}.timeouts`, `{prefix}.retransmissions`,
    /// `{prefix}.slots_total`; gauge `{prefix}.delivery_rate`; and the
    /// slot-count histogram `{prefix}.slots`.
    pub fn publish_metrics(&self, tele: &mut Telemetry, prefix: &str) {
        if !tele.is_enabled() || self.stats.transfers == 0 {
            return;
        }
        tele.add(&format!("{prefix}.transfers"), self.stats.transfers);
        tele.add(&format!("{prefix}.delivered"), self.stats.delivered);
        tele.add(&format!("{prefix}.timeouts"), self.stats.timeouts());
        tele.add(
            &format!("{prefix}.retransmissions"),
            self.stats.retransmissions(),
        );
        tele.add(&format!("{prefix}.slots_total"), self.stats.total_slots);
        tele.gauge_set(
            &format!("{prefix}.delivery_rate"),
            self.stats.delivery_rate(),
        );
        tele.merge_histogram(&format!("{prefix}.slots"), &self.slot_hist);
    }

    /// Simulates delivering `payload_bits`, returning the outcome.
    pub fn transfer(&mut self, payload_bits: u64, rng: &mut impl Rng) -> TransferOutcome {
        let outcome = self.transfer_inner(payload_bits, rng);
        self.stats.record(outcome);
        self.slot_hist.record(outcome.slots() as f64);
        outcome
    }

    fn transfer_inner(&mut self, payload_bits: u64, rng: &mut impl Rng) -> TransferOutcome {
        match self.policy {
            RetransmissionPolicy::WholePayload { max_slots } => {
                self.deliver_unit(payload_bits as f64, max_slots, 0, rng)
            }
            RetransmissionPolicy::Segmented {
                segment_bits,
                max_slots,
            } => {
                assert!(segment_bits > 0, "Segmented: segment_bits must be positive");
                let mut used = 0u64;
                let mut remaining = payload_bits;
                while remaining > 0 {
                    let chunk = remaining.min(segment_bits);
                    match self.deliver_unit(chunk as f64, max_slots, used, rng) {
                        TransferOutcome::Delivered { slots } => used = slots,
                        timeout => return timeout,
                    }
                    remaining -= chunk;
                }
                TransferOutcome::Delivered { slots: used.max(1) }
            }
        }
    }

    /// Retries one decode unit until success or the *total* slot budget
    /// (`max_slots`, counting `already_used`) is exhausted.
    fn deliver_unit(
        &mut self,
        bits: f64,
        max_slots: u64,
        already_used: u64,
        rng: &mut impl Rng,
    ) -> TransferOutcome {
        let mut used = already_used;
        while used < max_slots {
            let h = self.fading.sample(rng);
            used += 1;
            if self.slot_decodes(bits, h) {
                return TransferOutcome::Delivered { slots: used };
            }
        }
        TransferOutcome::TimedOut { slots: used }
    }

    /// Expected slots for a whole-payload transfer (geometric mean
    /// `1/p`), or `None` when the per-slot success probability underflows
    /// to zero.
    pub fn expected_slots_whole(&self, payload_bits: u64) -> Option<f64> {
        let p = success_probability(&self.link, payload_bits as f64);
        if p <= 0.0 {
            None
        } else {
            Some(1.0 / p)
        }
    }

    /// Seconds corresponding to `slots` on this link.
    pub fn slots_to_seconds(&self, slots: u64) -> f64 {
        slots as f64 * self.link.slot_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PayloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(policy: RetransmissionPolicy) -> TransferSimulator {
        TransferSimulator::new(LinkConfig::paper_uplink(), policy)
    }

    #[test]
    fn tiny_payload_delivers_first_slot() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = sim(RetransmissionPolicy::paper());
        for _ in 0..100 {
            let out = s.transfer(2_048, &mut rng);
            assert_eq!(out, TransferOutcome::Delivered { slots: 1 });
        }
    }

    #[test]
    fn impossible_payload_times_out() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = sim(RetransmissionPolicy::WholePayload { max_slots: 50 });
        let spec = PayloadSpec::paper(64);
        let out = s.transfer(spec.uplink_bits(1, 1), &mut rng);
        assert_eq!(out, TransferOutcome::TimedOut { slots: 50 });
        assert!(!out.delivered());
    }

    #[test]
    fn segmentation_makes_impossible_payload_deliverable() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = PayloadSpec::paper(64);
        let payload = spec.uplink_bits(1, 1); // 3.28 Mbit
        let mut s = sim(RetransmissionPolicy::Segmented {
            segment_bits: 30_000, // B/(τW) = 1 per segment
            max_slots: 10_000,
        });
        let out = s.transfer(payload, &mut rng);
        assert!(out.delivered(), "{out:?}");
        // ≥ ceil(payload/segment) slots must have been used.
        assert!(out.slots() >= payload / 30_000);
    }

    #[test]
    fn empirical_slot_count_matches_geometric_mean() {
        // Pick a payload whose per-slot success probability is moderate:
        // thr/SNR̄ = ln 2 gives p = 0.5.
        let link = LinkConfig::paper_uplink();
        let snr = link.mean_snr_linear();
        let thr = snr * std::f64::consts::LN_2;
        let bits = ((thr + 1.0).log2() * link.slot_s * link.bandwidth_hz) as u64;
        let mut s = TransferSimulator::new(link, RetransmissionPolicy::paper());
        let p = success_probability(s.link(), bits as f64);
        assert!((p - 0.5).abs() < 0.01, "p = {p}");

        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = TransferStats::default();
        for _ in 0..20_000 {
            stats.record(s.transfer(bits, &mut rng));
        }
        assert_eq!(stats.delivery_rate(), 1.0);
        let expect = s.expected_slots_whole(bits).unwrap();
        assert!(
            (stats.mean_slots() / expect - 1.0).abs() < 0.05,
            "mean {} vs expected {}",
            stats.mean_slots(),
            expect
        );
    }

    #[test]
    fn expected_slots_none_when_undecodable() {
        let s = sim(RetransmissionPolicy::paper());
        let spec = PayloadSpec::paper(64);
        assert_eq!(s.expected_slots_whole(spec.uplink_bits(1, 1)), None);
        let pixel = s.expected_slots_whole(spec.uplink_bits(40, 40)).unwrap();
        assert!((pixel - 1.0).abs() < 1e-6, "expected ≈1 slot, got {pixel}");
    }

    #[test]
    fn slots_to_seconds_uses_slot_length() {
        let s = sim(RetransmissionPolicy::paper());
        assert!((s.slots_to_seconds(1500) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_default_is_neutral() {
        let stats = TransferStats::default();
        assert_eq!(stats.delivery_rate(), 1.0);
        assert_eq!(stats.mean_slots(), 0.0);
    }

    #[test]
    fn simulator_accumulates_stats_and_histogram() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = sim(RetransmissionPolicy::WholePayload { max_slots: 10 });
        for _ in 0..50 {
            s.transfer(2_048, &mut rng); // always delivers in 1 slot
        }
        let spec = PayloadSpec::paper(64);
        s.transfer(spec.uplink_bits(1, 1), &mut rng); // always times out
        assert_eq!(s.stats().transfers, 51);
        assert_eq!(s.stats().delivered, 50);
        assert_eq!(s.stats().timeouts(), 1);
        assert_eq!(s.stats().total_slots, 60);
        assert_eq!(s.stats().retransmissions(), 60 - 51);
        assert_eq!(s.slot_histogram().count(), 51);
        assert_eq!(s.slot_histogram().min(), Some(1.0));
        assert_eq!(s.slot_histogram().max(), Some(10.0));
    }

    #[test]
    fn publish_metrics_fills_registry() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut s = sim(RetransmissionPolicy::paper());
        for _ in 0..20 {
            s.transfer(2_048, &mut rng);
        }
        let mut tele = sl_telemetry::Telemetry::summary();
        s.publish_metrics(&mut tele, "uplink");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("uplink.transfers"), 20);
        assert_eq!(snap.counter("uplink.delivered"), 20);
        assert_eq!(snap.counter("uplink.timeouts"), 0);
        assert_eq!(snap.gauge("uplink.delivery_rate"), Some(1.0));
        assert_eq!(snap.histograms["uplink.slots"].count(), 20);

        // Disabled telemetry records nothing.
        let mut off = sl_telemetry::Telemetry::disabled();
        s.publish_metrics(&mut off, "uplink");
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn downlink_ships_same_payload_faster_or_equal() {
        // The downlink's higher SNR and wider band can only help.
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let bits = 500_000u64;
        let mut ul = TransferSimulator::new(
            LinkConfig::paper_uplink(),
            RetransmissionPolicy::WholePayload { max_slots: 100_000 },
        );
        let mut dl = TransferSimulator::new(
            LinkConfig::paper_downlink(),
            RetransmissionPolicy::WholePayload { max_slots: 100_000 },
        );
        let mut ul_slots = 0u64;
        let mut dl_slots = 0u64;
        for _ in 0..200 {
            ul_slots += ul.transfer(bits, &mut rng_a).slots();
            dl_slots += dl.transfer(bits, &mut rng_b).slots();
        }
        assert!(dl_slots <= ul_slots, "dl {dl_slots} vs ul {ul_slots}");
    }
}
