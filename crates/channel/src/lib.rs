//! # `sl-channel` — slot-level mmWave fading-channel simulator
//!
//! Implements the wireless channel model of §2 of the paper, which governs
//! both Table 1 (feed-forward decoding success probability) and the
//! wall-clock axis of Fig. 3a (time spent shipping cut-layer payloads):
//!
//! * Received SNR at slot `t`: `SNR_t = P · r^-α · h_t / (σ² · W)` with
//!   `h_t ~ Exp(1)` i.i.d. multi-path fading ([`LinkConfig`],
//!   [`FadingChannel`]).
//! * A payload of `B` bits transmitted in one slot of length `τ` over
//!   bandwidth `W` is decoded iff `SNR_t > 2^{B/(τW)} − 1` (the Shannon
//!   threshold — the paper's printed `1 − 2^{B/(τW)}` is an evident sign
//!   typo; see DESIGN.md). Otherwise the payload is retransmitted in the
//!   next slot, as in the paper and its reference [6]
//!   ([`decode_threshold`], [`TransferSimulator`]).
//! * The uplink payload size follows the paper's formula
//!   `B_UL = N_H·N_W·B·R·L / (w_H·w_W)` ([`PayloadSpec`]).
//!
//! Everything is `f64`, deterministic given the caller's RNG, and
//! side-effect free — the same smoltcp-style "event-driven, no hidden
//! state" discipline the rest of the workspace follows.
//!
//! ```
//! use sl_channel::{success_probability, LinkConfig, PayloadSpec};
//!
//! let link = LinkConfig::paper_uplink();
//! let spec = PayloadSpec::paper(64); // minibatch of 64
//!
//! // The uncompressed 1×1-pooling payload can never decode in a slot…
//! assert!(success_probability(&link, spec.uplink_bits(1, 1) as f64) < 1e-9);
//! // …while the one-pixel payload always does.
//! assert!(success_probability(&link, spec.uplink_bits(40, 40) as f64) > 0.999);
//! ```

mod fading;
mod link;
mod payload;
mod transfer;
mod units;

pub use fading::FadingChannel;
pub use link::LinkConfig;
pub use payload::PayloadSpec;
pub use transfer::{RetransmissionPolicy, TransferOutcome, TransferSimulator, TransferStats};
pub use units::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};

/// Shannon decoding threshold for a `payload_bits` payload in one slot:
/// the minimum SNR such that `τ·W·log2(1 + SNR) ≥ B`, i.e.
/// `2^{B/(τW)} − 1`.
pub fn decode_threshold(payload_bits: f64, bandwidth_hz: f64, slot_s: f64) -> f64 {
    assert!(payload_bits >= 0.0, "decode_threshold: negative payload");
    assert!(
        bandwidth_hz > 0.0 && slot_s > 0.0,
        "decode_threshold: bandwidth and slot length must be positive"
    );
    (payload_bits / (slot_s * bandwidth_hz)).exp2() - 1.0
}

/// Analytic per-slot decoding success probability under unit-mean
/// exponential fading: `P[h > thr / SNR̄] = exp(−thr / SNR̄)`.
pub fn success_probability(link: &LinkConfig, payload_bits: f64) -> f64 {
    let thr = decode_threshold(payload_bits, link.bandwidth_hz, link.slot_s);
    let snr = link.mean_snr_linear();
    (-thr / snr).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_always_decodes() {
        assert_eq!(decode_threshold(0.0, 30e6, 1e-3), 0.0);
        assert_eq!(success_probability(&LinkConfig::paper_uplink(), 0.0), 1.0);
    }

    #[test]
    fn threshold_grows_exponentially_with_payload() {
        let w = 30e6;
        let tau = 1e-3;
        let t1 = decode_threshold(30_000.0, w, tau); // B/(τW) = 1 -> 1.0
        assert!((t1 - 1.0).abs() < 1e-9);
        let t2 = decode_threshold(60_000.0, w, tau); // -> 3.0
        assert!((t2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn success_probability_monotone_in_payload() {
        let link = LinkConfig::paper_uplink();
        let p_small = success_probability(&link, 1_000.0);
        let p_big = success_probability(&link, 1_000_000.0);
        assert!(p_small > p_big);
        assert!((0.0..=1.0).contains(&p_small) && (0.0..=1.0).contains(&p_big));
    }

    #[test]
    fn paper_table1_endpoints() {
        // Paper Table 1: pooling 1×1 (3.28 Mbit payload) has success
        // probability 0.00; pooling 40×40 (2 kbit payload) has 1.00.
        let link = LinkConfig::paper_uplink();
        let spec = PayloadSpec::paper(64);
        let p_raw = success_probability(&link, spec.uplink_bits(1, 1) as f64);
        let p_pixel = success_probability(&link, spec.uplink_bits(40, 40) as f64);
        assert!(p_raw < 1e-6, "1x1 pooling should never decode, got {p_raw}");
        assert!(
            p_pixel > 0.999,
            "one-pixel payload should always decode, got {p_pixel}"
        );
    }
}
