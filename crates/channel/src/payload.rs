//! Cut-layer payload sizing.

/// Parameters that size the split-layer communication payload.
///
/// The paper's uplink payload formula is
/// `B_UL = N_H · N_W · B · R · L / (w_H · w_W)`:
/// a minibatch of `B` sequence samples, each a length-`L` sequence of
/// pooled CNN output images of `(N_H/w_H) × (N_W/w_W)` pixels at `R` bits
/// per pixel. The backward-pass (downlink) gradient payload has the same
/// element count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadSpec {
    /// CNN output height before pooling (`N_H`).
    pub image_height: usize,
    /// CNN output width before pooling (`N_W`).
    pub image_width: usize,
    /// Minibatch size (`B`).
    pub batch_size: usize,
    /// Bit depth per transmitted pixel (`R`).
    pub bit_depth: usize,
    /// Sequence length (`L`).
    pub sequence_len: usize,
}

impl PayloadSpec {
    /// The paper's configuration: 40×40 CNN output, 8-bit pixels, `L = 4`,
    /// caller-chosen minibatch size (the paper trains with `B = 64`).
    pub fn paper(batch_size: usize) -> Self {
        PayloadSpec {
            image_height: 40,
            image_width: 40,
            batch_size,
            bit_depth: 8,
            sequence_len: 4,
        }
    }

    /// Pixels per pooled image for a `wh × ww` pooling window.
    ///
    /// # Panics
    /// Panics when the window does not tile the CNN output exactly.
    pub fn pooled_pixels(&self, wh: usize, ww: usize) -> usize {
        assert!(
            wh > 0 && ww > 0,
            "PayloadSpec: pooling window must be non-empty"
        );
        assert!(
            self.image_height.is_multiple_of(wh) && self.image_width.is_multiple_of(ww),
            "PayloadSpec: window {wh}x{ww} does not tile {}x{}",
            self.image_height,
            self.image_width
        );
        (self.image_height / wh) * (self.image_width / ww)
    }

    /// Uplink payload in bits for one SGD step with pooling `wh × ww`
    /// (the paper's `B_UL` formula).
    pub fn uplink_bits(&self, wh: usize, ww: usize) -> u64 {
        (self.pooled_pixels(wh, ww) * self.batch_size * self.bit_depth * self.sequence_len) as u64
    }

    /// Downlink (cut-layer gradient) payload in bits: same element count
    /// as the forward activations at the same bit depth.
    pub fn downlink_bits(&self, wh: usize, ww: usize) -> u64 {
        self.uplink_bits(wh, ww)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_payload_sizes() {
        let spec = PayloadSpec::paper(64);
        // 1×1 pooling: full 1600-pixel maps -> 40·40·64·8·4 bits.
        assert_eq!(spec.uplink_bits(1, 1), 3_276_800);
        // 4×4 pooling: 100 pixels.
        assert_eq!(spec.uplink_bits(4, 4), 204_800);
        // 10×10 pooling: 16 pixels.
        assert_eq!(spec.uplink_bits(10, 10), 32_768);
        // 40×40 pooling: the one-pixel image.
        assert_eq!(spec.uplink_bits(40, 40), 2_048);
    }

    #[test]
    fn payload_scales_linearly_with_batch() {
        let spec1 = PayloadSpec::paper(1);
        let spec64 = PayloadSpec::paper(64);
        assert_eq!(spec64.uplink_bits(4, 4), 64 * spec1.uplink_bits(4, 4));
    }

    #[test]
    fn compression_factor_is_window_area() {
        let spec = PayloadSpec::paper(8);
        assert_eq!(
            spec.uplink_bits(1, 1) / spec.uplink_bits(4, 4),
            16 // w_H · w_W
        );
    }

    #[test]
    fn downlink_matches_uplink_element_count() {
        let spec = PayloadSpec::paper(32);
        assert_eq!(spec.uplink_bits(10, 10), spec.downlink_bits(10, 10));
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn rejects_non_tiling_window() {
        PayloadSpec::paper(64).pooled_pixels(7, 7);
    }
}
