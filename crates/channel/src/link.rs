//! Link budget configuration.

use crate::units::dbm_to_mw;

/// The static parameters of one direction of the UE↔BS wireless link.
///
/// Mirrors §3 "Wireless Channel Parameters" of the paper; the two
/// directions differ only in transmit power and bandwidth
/// ([`LinkConfig::paper_uplink`], [`LinkConfig::paper_downlink`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Transmit power in dBm (`P^(x)`).
    pub tx_power_dbm: f64,
    /// Bandwidth in Hz (`W^(x)`).
    pub bandwidth_hz: f64,
    /// Noise power spectral density in dBm/Hz (`σ²`).
    pub noise_psd_dbm_hz: f64,
    /// BS–UE distance in metres (`r`).
    pub distance_m: f64,
    /// Path-loss exponent (`α`).
    pub path_loss_exp: f64,
    /// Time-slot length in seconds (`τ`).
    pub slot_s: f64,
}

impl LinkConfig {
    /// The paper's uplink: `P = 7.5 dBm`, `W = 30 MHz` (UE → BS; carries
    /// the forward-propagated cut-layer activations).
    pub fn paper_uplink() -> Self {
        LinkConfig {
            tx_power_dbm: 7.5,
            bandwidth_hz: 30e6,
            noise_psd_dbm_hz: -174.0,
            distance_m: 4.0,
            path_loss_exp: 5.0,
            slot_s: 1e-3,
        }
    }

    /// The paper's downlink: `P = 40 dBm`, `W = 100 MHz` (BS → UE; carries
    /// the backward-propagated cut-layer gradients).
    pub fn paper_downlink() -> Self {
        LinkConfig {
            tx_power_dbm: 40.0,
            bandwidth_hz: 100e6,
            ..LinkConfig::paper_uplink()
        }
    }

    /// Mean received SNR (linear): `P · r^-α / (σ² · W)`, i.e. the SNR at
    /// unit fading `h = 1`.
    pub fn mean_snr_linear(&self) -> f64 {
        assert!(
            self.distance_m > 0.0,
            "LinkConfig: distance must be positive"
        );
        assert!(
            self.bandwidth_hz > 0.0,
            "LinkConfig: bandwidth must be positive"
        );
        let p_mw = dbm_to_mw(self.tx_power_dbm);
        let path = self.distance_m.powf(-self.path_loss_exp);
        let noise_mw = dbm_to_mw(self.noise_psd_dbm_hz) * self.bandwidth_hz;
        p_mw * path / noise_mw
    }

    /// Mean received SNR in dB.
    pub fn mean_snr_db(&self) -> f64 {
        crate::units::linear_to_db(self.mean_snr_linear())
    }

    /// Returns a copy with the transmit power replaced — used by the
    /// Table 1 calibration sweep (see DESIGN.md §5).
    pub fn with_tx_power_dbm(&self, dbm: f64) -> Self {
        LinkConfig {
            tx_power_dbm: dbm,
            ..self.clone()
        }
    }

    /// Returns a copy whose transmit power is adjusted so that the mean
    /// received SNR equals `target_db`.
    ///
    /// The paper's published parameters yield a 76.6 dB mean uplink SNR,
    /// under which every payload except the uncompressed 1×1-pooling one
    /// decodes with probability ≈ 1; its Table 1 mid-points (0.027 at
    /// 4×4 pooling) imply an effective SNR near 15 dB. This helper
    /// produces that calibrated link (see DESIGN.md §5).
    pub fn with_mean_snr_db(&self, target_db: f64) -> Self {
        let delta = target_db - self.mean_snr_db();
        self.with_tx_power_dbm(self.tx_power_dbm + delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_uplink_budget() {
        // P = 7.5 dBm = 5.62 mW; r^-α = 4^-5; σ²W = 10^-17.4 mW/Hz · 30 MHz.
        let link = LinkConfig::paper_uplink();
        let snr = link.mean_snr_linear();
        // Closed-form: 5.6234e0 * 9.7656e-4 / (3.9811e-18 * 3e7) ≈ 4.6e7.
        assert!((snr / 4.6e7 - 1.0).abs() < 0.01, "snr = {snr:e}");
        assert!((link.mean_snr_db() - 76.6).abs() < 0.1);
    }

    #[test]
    fn downlink_has_higher_snr_despite_wider_band() {
        let ul = LinkConfig::paper_uplink();
        let dl = LinkConfig::paper_downlink();
        // +32.5 dB power, −5.2 dB from 100/30 MHz bandwidth.
        assert!((dl.mean_snr_db() - ul.mean_snr_db() - (32.5 - 5.228787)).abs() < 0.01);
    }

    #[test]
    fn snr_decreases_with_distance_and_alpha() {
        let base = LinkConfig::paper_uplink();
        let far = LinkConfig {
            distance_m: 8.0,
            ..base.clone()
        };
        // Doubling distance at α = 5 costs 2^5 = 32× ≈ 15 dB.
        assert!((base.mean_snr_db() - far.mean_snr_db() - 15.05).abs() < 0.1);
    }

    #[test]
    fn snr_calibration_hits_target() {
        let link = LinkConfig::paper_uplink().with_mean_snr_db(14.94);
        assert!((link.mean_snr_db() - 14.94).abs() < 1e-9);
        // Only the transmit power moved.
        assert_eq!(link.bandwidth_hz, 30e6);
        assert_eq!(link.distance_m, 4.0);
    }

    #[test]
    fn tx_power_override() {
        let link = LinkConfig::paper_uplink().with_tx_power_dbm(-20.0);
        assert_eq!(link.tx_power_dbm, -20.0);
        assert_eq!(link.bandwidth_hz, 30e6);
    }
}
