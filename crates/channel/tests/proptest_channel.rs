//! Property-based tests of the channel model: probability bounds,
//! monotonicity in every physical parameter, and simulator/analytic
//! agreement.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_channel::{
    decode_threshold, success_probability, LinkConfig, PayloadSpec, RetransmissionPolicy,
    TransferSimulator,
};

fn any_link() -> impl Strategy<Value = LinkConfig> {
    (
        -20.0f64..45.0, // tx power dBm
        1e6f64..200e6,  // bandwidth
        1.0f64..20.0,   // distance
        2.0f64..6.0,    // path-loss exponent
    )
        .prop_map(|(p, w, r, a)| LinkConfig {
            tx_power_dbm: p,
            bandwidth_hz: w,
            noise_psd_dbm_hz: -174.0,
            distance_m: r,
            path_loss_exp: a,
            slot_s: 1e-3,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn success_probability_is_a_probability(link in any_link(), bits in 0u64..10_000_000) {
        let p = success_probability(&link, bits as f64);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn success_monotone_decreasing_in_payload(link in any_link(), b1 in 0u64..1_000_000, b2 in 0u64..1_000_000) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        prop_assert!(
            success_probability(&link, lo as f64) >= success_probability(&link, hi as f64)
        );
    }

    #[test]
    fn success_monotone_increasing_in_power(link in any_link(), bits in 1_000u64..1_000_000, boost in 0.0f64..30.0) {
        let stronger = link.with_tx_power_dbm(link.tx_power_dbm + boost);
        prop_assert!(
            success_probability(&stronger, bits as f64) + 1e-15
                >= success_probability(&link, bits as f64)
        );
    }

    #[test]
    fn threshold_monotone_in_payload(w in 1e6f64..100e6, b1 in 0.0f64..1e7, b2 in 0.0f64..1e7) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        prop_assert!(decode_threshold(lo, w, 1e-3) <= decode_threshold(hi, w, 1e-3));
    }

    #[test]
    fn snr_calibration_is_exact(link in any_link(), target in -20.0f64..80.0) {
        let cal = link.with_mean_snr_db(target);
        prop_assert!((cal.mean_snr_db() - target).abs() < 1e-6);
    }

    #[test]
    fn payload_formula_divides_exactly(batch in 1usize..256, r in 1usize..16, l in 1usize..8) {
        let spec = PayloadSpec {
            image_height: 40,
            image_width: 40,
            batch_size: batch,
            bit_depth: r,
            sequence_len: l,
        };
        // Compression by the window area is exact for tiling windows.
        let full = spec.uplink_bits(1, 1);
        for w in [2usize, 4, 5, 8, 10, 20, 40] {
            prop_assert_eq!(spec.uplink_bits(w, w) * (w * w) as u64, full);
        }
    }

    #[test]
    fn delivered_transfers_use_at_least_one_slot(seed in 0u64..1000, bits in 1u64..100_000) {
        let mut sim = TransferSimulator::new(
            LinkConfig::paper_uplink(),
            RetransmissionPolicy::WholePayload { max_slots: 10_000 },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sim.transfer(bits, &mut rng);
        prop_assert!(out.slots() >= 1);
        if out.delivered() {
            prop_assert!(out.slots() <= 10_000);
        } else {
            prop_assert_eq!(out.slots(), 10_000);
        }
    }

    #[test]
    fn segmented_never_slower_than_impossible(seed in 0u64..100) {
        // For a payload the whole-payload policy cannot deliver, the
        // segmented policy must deliver (given budget) in finite slots.
        let spec = PayloadSpec::paper(64);
        let bits = spec.uplink_bits(1, 1);
        let mut sim = TransferSimulator::new(
            LinkConfig::paper_uplink(),
            RetransmissionPolicy::Segmented { segment_bits: 15_000, max_slots: 1_000_000 },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sim.transfer(bits, &mut rng);
        prop_assert!(out.delivered());
        prop_assert!(out.slots() >= bits.div_ceil(15_000));
    }
}
