//! Pairwise Euclidean distance matrices.

use sl_tensor::Tensor;

/// A symmetric `n × n` matrix of pairwise distances with zero diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` distances.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate zero-point matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "DistanceMatrix: index out of bounds"
        );
        self.data[i * self.n + j]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Builds directly from a row-major buffer (validated).
    pub fn from_raw(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "DistanceMatrix: buffer/size mismatch");
        for i in 0..n {
            assert!(
                data[i * n + i].abs() < 1e-12,
                "DistanceMatrix: nonzero diagonal at {i}"
            );
            for j in 0..i {
                let a = data[i * n + j];
                let b = data[j * n + i];
                assert!(a >= 0.0, "DistanceMatrix: negative distance");
                assert!(
                    (a - b).abs() < 1e-9,
                    "DistanceMatrix: asymmetric at ({i},{j})"
                );
            }
        }
        DistanceMatrix { n, data }
    }

    /// Mean of the off-diagonal distances (0 for n < 2).
    pub fn mean_off_diagonal(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: f64 = (0..self.n)
            .flat_map(|i| (0..self.n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| self.get(i, j))
            .sum();
        sum / (self.n * (self.n - 1)) as f64
    }
}

/// Pairwise Euclidean distances between the flattened tensors in
/// `points`.
///
/// # Panics
/// Panics when the tensors have differing element counts.
pub fn distance_matrix(points: &[&Tensor]) -> DistanceMatrix {
    let n = points.len();
    if n == 0 {
        return DistanceMatrix {
            n: 0,
            data: Vec::new(),
        };
    }
    let dim = points[0].numel();
    for (idx, p) in points.iter().enumerate() {
        assert_eq!(
            p.numel(),
            dim,
            "distance_matrix: point {idx} has {} elements, expected {dim}",
            p.numel()
        );
    }
    let mut data = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = points[i]
                .data()
                .iter()
                .zip(points[j].data())
                .map(|(&a, &b)| {
                    let diff = (a - b) as f64;
                    diff * diff
                })
                .sum::<f64>()
                .sqrt();
            data[i * n + j] = d;
            data[j * n + i] = d;
        }
    }
    DistanceMatrix { n, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_345() {
        let a = Tensor::from_slice(&[0.0, 0.0]);
        let b = Tensor::from_slice(&[3.0, 0.0]);
        let c = Tensor::from_slice(&[0.0, 4.0]);
        let d = distance_matrix(&[&a, &b, &c]);
        assert_eq!(d.len(), 3);
        assert!((d.get(0, 1) - 3.0).abs() < 1e-9);
        assert!((d.get(0, 2) - 4.0).abs() < 1e-9);
        assert!((d.get(1, 2) - 5.0).abs() < 1e-9);
        // Symmetry, zero diagonal.
        assert_eq!(d.get(1, 0), d.get(0, 1));
        assert_eq!(d.get(2, 2), 0.0);
    }

    #[test]
    fn identical_points_zero_distance() {
        let a = Tensor::ones([4]);
        let d = distance_matrix(&[&a, &a]);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn works_on_images() {
        let a = Tensor::zeros([4, 4]);
        let b = Tensor::ones([4, 4]);
        let d = distance_matrix(&[&a, &b]);
        assert!((d.get(0, 1) - 4.0).abs() < 1e-9); // sqrt(16)
    }

    #[test]
    fn mean_off_diagonal() {
        let a = Tensor::from_slice(&[0.0]);
        let b = Tensor::from_slice(&[2.0]);
        let d = distance_matrix(&[&a, &b]);
        assert!((d.mean_off_diagonal() - 2.0).abs() < 1e-12);
        assert_eq!(distance_matrix(&[&a]).mean_off_diagonal(), 0.0);
    }

    #[test]
    fn from_raw_validates() {
        let ok = DistanceMatrix::from_raw(2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(ok.get(0, 1), 1.0);
        let bad =
            std::panic::catch_unwind(|| DistanceMatrix::from_raw(2, vec![0.0, 1.0, 2.0, 0.0]));
        assert!(bad.is_err());
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn mismatched_dims_panic() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        distance_matrix(&[&a, &b]);
    }
}
