//! # `sl-privacy` — MDS-based privacy-leakage metric
//!
//! Table 1 of the paper quantifies the privacy leakage of the cut-layer
//! payload as the similarity between each raw image `x_k` and its CNN
//! output feature map `φ(x_k)`, "measured by multidimensional scaling
//! algorithm" (after Hout et al. [2]). The pipeline implemented here:
//!
//! 1. pairwise Euclidean [`distance_matrix`] over a sample of raw images
//!    and over the matching feature maps,
//! 2. classical (Torgerson) [`mds`] embeddings of both — double-centred
//!    Gram matrix, [`jacobi_eigen`] decomposition, top-`k` coordinates,
//! 3. [`procrustes_similarity`]: optimal rotation/scale/translation
//!    alignment of the two configurations; the similarity is
//!    `1 − R²_residual ∈ [0, 1]`,
//! 4. [`privacy_leakage`] = that similarity. Feature maps that preserve
//!    the raw images' geometry embed congruently (high leakage ≈ an
//!    eavesdropper reconstructs the images' relations); heavy pooling
//!    collapses the geometry and drives the leakage down — the paper's
//!    Table 1 trend.
//!
//! The paper's phrase "the inverse of the similarity" is ambiguous (read
//! literally it would make *more* compression leak *more*, contradicting
//! the table); we follow the table's semantics: leakage is monotone in
//! structural similarity. A [`congruence_coefficient`] on the raw
//! distance matrices is provided as a secondary, alignment-free metric.
//!
//! ```
//! use sl_privacy::privacy_leakage;
//! use sl_tensor::Tensor;
//!
//! let raw: Vec<Tensor> = (0..8)
//!     .map(|i| Tensor::from_slice(&[i as f32, (i * i) as f32]))
//!     .collect();
//! let raw_refs: Vec<&Tensor> = raw.iter().collect();
//!
//! // Transmitting the images unchanged leaks their whole geometry…
//! assert!(privacy_leakage(&raw_refs, &raw_refs) > 0.99);
//! // …while a constant payload leaks nothing.
//! let flat: Vec<Tensor> = (0..8).map(|_| Tensor::from_slice(&[1.0])).collect();
//! assert_eq!(privacy_leakage(&raw_refs, &flat.iter().collect::<Vec<_>>()), 0.0);
//! ```

mod distance;
mod eigen;
mod mds;
mod similarity;

pub use distance::{distance_matrix, DistanceMatrix};
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use mds::{mds, MdsEmbedding};
pub use similarity::{congruence_coefficient, privacy_leakage, procrustes_similarity};
