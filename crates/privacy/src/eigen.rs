//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The MDS Gram matrices are small (one row per sampled image, ~100–400),
//! dense and symmetric — exactly the regime where Jacobi rotations are
//! simple, robust and accurate.

/// Eigenvalues (descending) and matching eigenvectors of a symmetric
/// matrix.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// `vectors[k]` is the unit eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Decomposes the symmetric `n × n` matrix `a` (row-major).
///
/// Sweeps Jacobi rotations until the off-diagonal Frobenius mass falls
/// below `1e-12` of the initial matrix norm (or 100 sweeps).
///
/// # Panics
/// Panics when the buffer is not `n²` long or the matrix is visibly
/// asymmetric.
pub fn jacobi_eigen(n: usize, a: &[f64]) -> EigenDecomposition {
    assert_eq!(a.len(), n * n, "jacobi_eigen: buffer/size mismatch");
    for i in 0..n {
        for j in 0..i {
            assert!(
                (a[i * n + j] - a[j * n + i]).abs() < 1e-6,
                "jacobi_eigen: asymmetric input at ({i},{j})"
            );
        }
    }
    let mut m = a.to_vec();
    // Eigenvector accumulator, starts as identity.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    let tol = 1e-12 * norm;

    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[p * n + q] * m[p * n + q];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Collect and sort descending by eigenvalue.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| {
            let val = m[k * n + k];
            let vec: Vec<f64> = (0..n).map(|r| v[r * n + k]).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    EigenDecomposition {
        values: pairs.iter().map(|(val, _)| *val).collect(),
        vectors: pairs.into_iter().map(|(_, vec)| vec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn diagonal_matrix() {
        let a = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let e = jacobi_eigen(3, &a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let e = jacobi_eigen(2, &[2.0, 1.0, 1.0, 2.0]);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v = &e.vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstructs_av_equals_lambda_v() {
        // A pseudo-random symmetric 8x8.
        let n = 8;
        let mut a = vec![0.0f64; n * n];
        let mut seed = 12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 2000) as f64 / 1000.0 - 1.0
        };
        for i in 0..n {
            for j in 0..=i {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        let e = jacobi_eigen(n, &a);
        for k in 0..n {
            let av = matvec(n, &a, &e.vectors[k]);
            for (r, &av_r) in av.iter().enumerate() {
                assert!(
                    (av_r - e.values[k] * e.vectors[k][r]).abs() < 1e-8,
                    "A·v ≠ λ·v at eigenpair {k}, row {r}"
                );
            }
            // Unit norm.
            let norm: f64 = e.vectors[k].iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8);
        }
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_orthogonal() {
        let a = vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.0];
        let e = jacobi_eigen(3, &a);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let dot: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-8, "vectors {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn rejects_asymmetric_input() {
        jacobi_eigen(2, &[1.0, 2.0, 0.0, 1.0]);
    }
}
