//! Configuration similarity and the privacy-leakage metric.

use sl_tensor::Tensor;

use crate::distance::{distance_matrix, DistanceMatrix};
use crate::eigen::jacobi_eigen;
use crate::mds::{mds, MdsEmbedding};

/// The embedding dimensionality used by [`privacy_leakage`] — 2, matching
/// the planar MDS configurations of Hout et al. [2].
pub const LEAKAGE_MDS_DIM: usize = 2;

/// Procrustes similarity between two centred configurations of the same
/// `n` points: `(Σᵢ σᵢ(AᵀB))² / (‖A‖²F · ‖B‖²F) ∈ [0, 1]`.
///
/// This is `1 − d` where `d` is the (scale-optimal, rotation/reflection-
/// invariant) Procrustes statistic, i.e. the fraction of configuration
/// variance that survives the best orthogonal alignment. `1` means the
/// configurations are identical up to rotation/reflection/scale; `0`
/// means no linear alignment matches at all (or one configuration is
/// degenerate).
pub fn procrustes_similarity(a: &MdsEmbedding, b: &MdsEmbedding) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "procrustes_similarity: point counts differ"
    );
    assert_eq!(a.dim(), b.dim(), "procrustes_similarity: dimensions differ");
    let n = a.len();
    let k = a.dim();
    if n == 0 {
        return 1.0;
    }

    let norm_a: f64 = a.coords().iter().map(|x| x * x).sum();
    let norm_b: f64 = b.coords().iter().map(|x| x * x).sum();
    if norm_a < 1e-18 || norm_b < 1e-18 {
        return 0.0;
    }

    // C = AᵀB (k × k).
    let mut c = vec![0.0f64; k * k];
    for i in 0..n {
        let pa = a.point(i);
        let pb = b.point(i);
        for r in 0..k {
            for s in 0..k {
                c[r * k + s] += pa[r] * pb[s];
            }
        }
    }
    // Nuclear norm of C = Σ singular values = Σ sqrt(eig(CᵀC)).
    let mut ctc = vec![0.0f64; k * k];
    for r in 0..k {
        for s in 0..k {
            ctc[r * k + s] = (0..k).map(|t| c[t * k + r] * c[t * k + s]).sum();
        }
    }
    let eig = jacobi_eigen(k, &ctc);
    let nuclear: f64 = eig.values.iter().map(|&l| l.max(0.0).sqrt()).sum();

    (nuclear * nuclear / (norm_a * norm_b)).clamp(0.0, 1.0)
}

/// Congruence coefficient between two distance matrices over the same
/// points: `Σ d1ᵢⱼ·d2ᵢⱼ / √(Σ d1ᵢⱼ² · Σ d2ᵢⱼ²)` over `i < j`.
///
/// An alignment-free secondary similarity in `[0, 1]` (both matrices are
/// non-negative).
pub fn congruence_coefficient(d1: &DistanceMatrix, d2: &DistanceMatrix) -> f64 {
    assert_eq!(d1.len(), d2.len(), "congruence_coefficient: sizes differ");
    let n = d1.len();
    let mut dot = 0.0f64;
    let mut n1 = 0.0f64;
    let mut n2 = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let a = d1.get(i, j);
            let b = d2.get(i, j);
            dot += a * b;
            n1 += a * a;
            n2 += b * b;
        }
    }
    if n1 < 1e-18 || n2 < 1e-18 {
        return 0.0;
    }
    (dot / (n1 * n2).sqrt()).clamp(0.0, 1.0)
}

/// The paper's Table 1 privacy-leakage metric: how much of the raw
/// images' pairwise geometry an eavesdropper holding only the CNN output
/// feature maps could reconstruct.
///
/// Pipeline: MDS-embed (to [`LEAKAGE_MDS_DIM`]) the raw images and the
/// matching feature maps, then measure [`procrustes_similarity`] between
/// the two planar configurations. High ⇒ the cut-layer payload still
/// mirrors the raw images (leaky); low ⇒ pooling has collapsed the
/// geometry (private).
///
/// # Panics
/// Panics when the two slices differ in length.
pub fn privacy_leakage(raw_images: &[&Tensor], feature_maps: &[&Tensor]) -> f64 {
    assert_eq!(
        raw_images.len(),
        feature_maps.len(),
        "privacy_leakage: sample counts differ"
    );
    let d_raw = distance_matrix(raw_images);
    let d_feat = distance_matrix(feature_maps);
    let e_raw = mds(&d_raw, LEAKAGE_MDS_DIM);
    let e_feat = mds(&d_feat, LEAKAGE_MDS_DIM);
    procrustes_similarity(&e_raw, &e_feat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn embed(points: &[Vec<f32>]) -> MdsEmbedding {
        let ts: Vec<Tensor> = points.iter().map(|p| Tensor::from_slice(p)).collect();
        let refs: Vec<&Tensor> = ts.iter().collect();
        mds(&distance_matrix(&refs), 2)
    }

    #[test]
    fn identical_configurations_score_one() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 1.0],
        ];
        let a = embed(&pts);
        let s = procrustes_similarity(&a, &a);
        assert!((s - 1.0).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn rotation_and_scale_invariance() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 1.0],
        ];
        // Rotate by 40° and scale by 3.
        let (sin, cos) = 40f32.to_radians().sin_cos();
        let moved: Vec<Vec<f32>> = pts
            .iter()
            .map(|p| {
                vec![
                    3.0 * (cos * p[0] - sin * p[1]),
                    3.0 * (sin * p[0] + cos * p[1]),
                ]
            })
            .collect();
        let s = procrustes_similarity(&embed(&pts), &embed(&moved));
        assert!((s - 1.0).abs() < 1e-6, "s = {s}");
    }

    #[test]
    fn unrelated_configurations_score_low() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let a: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..6).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        let b: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..6).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        let s = procrustes_similarity(&embed(&a), &embed(&b));
        let same = procrustes_similarity(&embed(&a), &embed(&a));
        assert!(s < 0.6 * same, "unrelated {s} vs identical {same}");
    }

    #[test]
    fn collapsed_configuration_scores_zero() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let collapsed = vec![vec![5.0, 5.0]; 3];
        let s = procrustes_similarity(&embed(&pts), &embed(&collapsed));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn congruence_of_identical_matrices_is_one() {
        let ts: Vec<Tensor> = [[0.0f32, 0.0], [1.0, 0.5], [2.0, 2.0]]
            .iter()
            .map(|p| Tensor::from_slice(p))
            .collect();
        let refs: Vec<&Tensor> = ts.iter().collect();
        let d = distance_matrix(&refs);
        assert!((congruence_coefficient(&d, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_decreases_with_information_destruction() {
        // Raw points live on a 2-D manifold (coordinates (u, v) repeated
        // across 8 dims). Three "feature map" levels mimic increasing
        // pooling: identity, a 1-D projection (keep u only), and a
        // constant. Leakage must fall monotonically.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 30;
        let uv: Vec<(f32, f32)> = (0..n)
            .map(|_| (rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
            .collect();
        let raw: Vec<Tensor> = uv
            .iter()
            .map(|&(u, v)| Tensor::from_slice(&[u, v, u, v, u, v, u, v]))
            .collect();
        let copy: Vec<Tensor> = raw.clone();
        let projected: Vec<Tensor> = uv.iter().map(|&(u, _)| Tensor::from_slice(&[u])).collect();
        let constant: Vec<Tensor> = (0..n).map(|_| Tensor::from_slice(&[0.5])).collect();

        let refs_raw: Vec<&Tensor> = raw.iter().collect();
        let l_copy = privacy_leakage(&refs_raw, &copy.iter().collect::<Vec<_>>());
        let l_projected = privacy_leakage(&refs_raw, &projected.iter().collect::<Vec<_>>());
        let l_constant = privacy_leakage(&refs_raw, &constant.iter().collect::<Vec<_>>());
        assert!(
            l_copy > l_projected && l_projected > l_constant,
            "leakage not monotone: copy {l_copy}, projected {l_projected}, constant {l_constant}"
        );
        assert!(
            l_copy > 0.9,
            "identity features must leak ≈ everything: {l_copy}"
        );
        assert_eq!(l_constant, 0.0, "a constant payload leaks nothing");
    }

    #[test]
    #[should_panic(expected = "sample counts differ")]
    fn leakage_checks_lengths() {
        let a = Tensor::zeros([2]);
        privacy_leakage(&[&a], &[]);
    }
}
