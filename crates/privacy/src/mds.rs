//! Classical (Torgerson) multidimensional scaling.

use crate::distance::DistanceMatrix;
use crate::eigen::jacobi_eigen;

/// A `k`-dimensional MDS configuration of `n` points.
#[derive(Debug, Clone, PartialEq)]
pub struct MdsEmbedding {
    n: usize,
    dim: usize,
    /// Row-major `n × dim` coordinates.
    coords: Vec<f64>,
}

impl MdsEmbedding {
    /// Number of embedded points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no points are embedded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "MdsEmbedding: index out of bounds");
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw row-major coordinate buffer.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Euclidean distance between embedded points `i` and `j`.
    pub fn embedded_distance(&self, i: usize, j: usize) -> f64 {
        self.point(i)
            .iter()
            .zip(self.point(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Classical MDS: embeds the points of `d` into `dim` dimensions so that
/// embedded distances approximate the originals.
///
/// Algorithm: double-centre the squared-distance matrix into the Gram
/// matrix `B = −½ J D² J`, eigendecompose, and scale the top-`dim`
/// eigenvectors by `√λ`. Non-positive eigenvalues (non-Euclidean noise)
/// contribute zero coordinates, the standard convention.
pub fn mds(d: &DistanceMatrix, dim: usize) -> MdsEmbedding {
    let n = d.len();
    assert!(dim >= 1, "mds: embedding dimension must be ≥ 1");
    if n == 0 {
        return MdsEmbedding {
            n: 0,
            dim,
            coords: Vec::new(),
        };
    }

    // B = -1/2 · J D² J with J = I - 11ᵀ/n.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let v = d.get(i, j);
            d2[i * n + j] = v * v;
        }
    }
    let row_means: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| d2[i * n + j]).sum::<f64>() / n as f64)
        .collect();
    let grand = row_means.iter().sum::<f64>() / n as f64;
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = -0.5 * (d2[i * n + j] - row_means[i] - row_means[j] + grand);
        }
    }

    let e = jacobi_eigen(n, &b);
    let mut coords = vec![0.0f64; n * dim];
    for k in 0..dim.min(n) {
        let lambda = e.values[k];
        if lambda <= 0.0 {
            continue; // non-Euclidean residual: zero coordinate
        }
        let scale = lambda.sqrt();
        for i in 0..n {
            coords[i * dim + k] = e.vectors[k][i] * scale;
        }
    }
    MdsEmbedding { n, dim, coords }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance_matrix;
    use sl_tensor::Tensor;

    fn embed_points(pts: &[Vec<f32>], dim: usize) -> MdsEmbedding {
        let tensors: Vec<Tensor> = pts.iter().map(|p| Tensor::from_slice(p)).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        mds(&distance_matrix(&refs), dim)
    }

    #[test]
    fn recovers_planar_configuration_distances() {
        // Four corners of a rectangle in the plane; a 2-D MDS embedding
        // must reproduce every pairwise distance exactly.
        let pts = vec![
            vec![0.0, 0.0],
            vec![3.0, 0.0],
            vec![3.0, 2.0],
            vec![0.0, 2.0],
        ];
        let e = embed_points(&pts, 2);
        let expected = [
            (0, 1, 3.0),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (3, 0, 2.0),
            (0, 2, 13f64.sqrt()),
            (1, 3, 13f64.sqrt()),
        ];
        for (i, j, d) in expected {
            assert!(
                (e.embedded_distance(i, j) - d).abs() < 1e-6,
                "pair ({i},{j}): {} vs {d}",
                e.embedded_distance(i, j)
            );
        }
    }

    #[test]
    fn embedding_is_centred() {
        let pts = vec![vec![1.0, 5.0], vec![4.0, 1.0], vec![7.0, 9.0]];
        let e = embed_points(&pts, 2);
        for k in 0..2 {
            let mean: f64 = (0..3).map(|i| e.point(i)[k]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9, "axis {k} mean {mean}");
        }
    }

    #[test]
    fn high_dimensional_points_compress_with_loss() {
        // Vertices of a 3-simplex (all pairwise distances equal) cannot
        // embed exactly in 1-D; MDS must still return finite coordinates.
        let pts = vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ];
        let e = embed_points(&pts, 1);
        assert_eq!(e.dim(), 1);
        assert!(e.coords().iter().all(|c| c.is_finite()));
        // Distances shrink on average relative to the true √2.
        let mean: f64 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
            .iter()
            .map(|&(i, j)| e.embedded_distance(i, j))
            .sum::<f64>()
            / 6.0;
        assert!(mean < 2f64.sqrt() + 1e-9);
        assert!(mean > 0.0);
    }

    #[test]
    fn identical_points_collapse_to_origin() {
        let pts = vec![vec![2.0, 2.0]; 3];
        let e = embed_points(&pts, 2);
        assert!(e.coords().iter().all(|&c| c.abs() < 1e-9));
    }

    #[test]
    fn empty_input() {
        let d = distance_matrix(&[]);
        let e = mds(&d, 2);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
