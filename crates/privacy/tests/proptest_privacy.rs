//! Property-based tests of the privacy metric: MDS distance recovery,
//! similarity invariances, and leakage bounds.

use proptest::prelude::*;

use sl_privacy::{
    congruence_coefficient, distance_matrix, jacobi_eigen, mds, privacy_leakage,
    procrustes_similarity,
};
use sl_tensor::Tensor;

fn points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, dim), n)
}

fn tensors(pts: &[Vec<f32>]) -> Vec<Tensor> {
    pts.iter().map(|p| Tensor::from_slice(p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn distances_satisfy_triangle_inequality(pts in points(6, 4)) {
        let ts = tensors(&pts);
        let refs: Vec<&Tensor> = ts.iter().collect();
        let d = distance_matrix(&refs);
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-4);
                }
            }
        }
    }

    #[test]
    fn planar_points_embed_exactly(pts in points(8, 2)) {
        // 2-D data embedded in 2-D must reproduce all pairwise distances.
        let ts = tensors(&pts);
        let refs: Vec<&Tensor> = ts.iter().collect();
        let d = distance_matrix(&refs);
        let e = mds(&d, 2);
        for i in 0..8 {
            for j in 0..8 {
                let err = (e.embedded_distance(i, j) - d.get(i, j)).abs();
                prop_assert!(err < 1e-3 * (1.0 + d.get(i, j)), "pair ({i},{j}) err {err}");
            }
        }
    }

    #[test]
    fn similarity_in_unit_interval_and_reflexive(pts in points(8, 3)) {
        let ts = tensors(&pts);
        let refs: Vec<&Tensor> = ts.iter().collect();
        let e = mds(&distance_matrix(&refs), 2);
        let s = procrustes_similarity(&e, &e);
        prop_assert!((0.0..=1.0).contains(&s));
        // Degenerate (all-identical) configurations score 0 vs self by
        // convention; otherwise self-similarity is 1.
        if e.coords().iter().any(|&c| c.abs() > 1e-9) {
            prop_assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn similarity_is_symmetric(a in points(7, 3), b in points(7, 5)) {
        let ta = tensors(&a);
        let tb = tensors(&b);
        let ra: Vec<&Tensor> = ta.iter().collect();
        let rb: Vec<&Tensor> = tb.iter().collect();
        let ea = mds(&distance_matrix(&ra), 2);
        let eb = mds(&distance_matrix(&rb), 2);
        let s1 = procrustes_similarity(&ea, &eb);
        let s2 = procrustes_similarity(&eb, &ea);
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn leakage_bounded_and_maximal_for_identity(pts in points(10, 4)) {
        let ts = tensors(&pts);
        let refs: Vec<&Tensor> = ts.iter().collect();
        let leak = privacy_leakage(&refs, &refs);
        prop_assert!((0.0..=1.0).contains(&leak));
        // Identity features leak everything (unless degenerate).
        let d = distance_matrix(&refs);
        if d.mean_off_diagonal() > 1e-6 {
            prop_assert!(leak > 0.99, "identity leakage {leak}");
        }
    }

    #[test]
    fn congruence_bounded(a in points(6, 3), b in points(6, 3)) {
        let ta = tensors(&a);
        let tb = tensors(&b);
        let ra: Vec<&Tensor> = ta.iter().collect();
        let rb: Vec<&Tensor> = tb.iter().collect();
        let c = congruence_coefficient(&distance_matrix(&ra), &distance_matrix(&rb));
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn eigen_trace_preserved(vals in proptest::collection::vec(-4.0f64..4.0, 10)) {
        // Build a symmetric matrix from random entries.
        let n = 4;
        let mut m = vec![0.0f64; n * n];
        let mut it = vals.iter();
        for i in 0..n {
            for j in 0..=i {
                let v = *it.next().unwrap();
                m[i * n + j] = v;
                m[j * n + i] = v;
            }
        }
        let e = jacobi_eigen(n, &m);
        let trace: f64 = (0..n).map(|i| m[i * n + i]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        // Eigenvalues sorted descending.
        prop_assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }
}
