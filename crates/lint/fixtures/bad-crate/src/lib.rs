//! Seeded violations for the `slm-lint` golden tests — exactly one per
//! rule, at positions the tests pin down to line and column.

use std::time::Instant;

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("seeded violation")
}

pub fn nondet_site() -> Instant {
    Instant::now()
}

pub fn print_site() {
    println!("seeded violation");
}

pub fn float_cmp_site(x: f32) -> bool {
    x == 0.5
}

pub fn lossy_cast_site(n: usize) -> f32 {
    n as f32
}

// slm-lint: allow(no-unwrap)
pub fn bad_waiver_site() {}

pub fn waived_site(v: Option<u32>) -> u32 {
    // slm-lint: allow(no-unwrap) seeded: a documented waiver suppresses the next line
    v.unwrap()
}

// ---- seeded violations for the semantic passes ------------------------
// One per pass, again pinned by the golden tests to exact lines.

/// `--protocol`: `Orphan` decodes nowhere, no handler arm names it, and
/// the enum lacks a `const ALL` annotation.
pub enum ProtoMsg {
    Hello = 1,
    Data = 2,
    Orphan = 3,
}

impl ProtoMsg {
    pub fn from_u8(b: u8) -> Option<ProtoMsg> {
        match b {
            1 => Some(ProtoMsg::Hello),
            2 => Some(ProtoMsg::Data),
            _ => None,
        }
    }
}

pub fn handler_site(m: ProtoMsg) -> u32 {
    match m {
        ProtoMsg::Hello => 1,
        ProtoMsg::Data => 2,
        _ => 0,
    }
}

/// Minimal publish surface so `--keys` harvests the orphan below.
pub struct Tele;
impl Tele {
    pub fn inc(&mut self, _key: &str) {}
}

/// `--keys`: published but declared nowhere.
pub fn orphan_key_site(t: &mut Tele) {
    t.inc("bogus.orphan.key");
}

/// `--knobs`: an `SLM_*` read missing from the knob table.
pub fn undeclared_knob_site() -> Option<String> {
    std::env::var("SLM_BOGUS").ok()
}

/// `--determinism`: two accumulators per output element.
pub fn split_accumulator_site(xs: &[f32]) -> f32 {
    let mut acc_lo = 0.0f32;
    let mut acc_hi = 0.0f32;
    for k in 0..xs.len() {
        if k % 2 == 0 {
            acc_lo += xs[k];
        } else {
            acc_hi += xs[k];
        }
    }
    acc_lo + acc_hi
}

/// `--determinism`: non-ascending reduction order over `k`.
pub fn reversed_k_site(xs: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for k in (0..xs.len()).rev() {
        total += xs[k];
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_regions_do_not_fire() {
        assert_eq!(unwrap_site(Some(1)), 1);
        let v: Option<u32> = Some(2);
        assert_eq!(v.unwrap(), 2);
        println!("prints are fine in tests");
    }
}

// ---- later seeded violations, appended after the tests mod so every
// ---- pinned line above stays stable.

/// `unsafe-containment`: `unsafe` outside the sanctioned SIMD module.
pub fn unsafe_site(p: *const u32) -> u32 {
    unsafe { *p }
}

/// `--determinism`: a fused multiply-add intrinsic rounds once.
pub fn fused_madd_site(a: f32, b: f32, c: f32) -> f32 {
    _mm_fmadd_ss_like(a, b, c)
}

fn _mm_fmadd_ss_like(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}

/// `--determinism`: a horizontal lane reduction reassociates the sum.
pub fn lane_reduce_site(v: [f32; 4]) -> f32 {
    _mm_hadd_ps_like(v)
}

fn _mm_hadd_ps_like(v: [f32; 4]) -> f32 {
    ((v[0] + v[1]) + v[2]) + v[3]
}
