//! Seeded violations for the `slm-lint` golden tests — exactly one per
//! rule, at positions the tests pin down to line and column.

use std::time::Instant;

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("seeded violation")
}

pub fn nondet_site() -> Instant {
    Instant::now()
}

pub fn print_site() {
    println!("seeded violation");
}

pub fn float_cmp_site(x: f32) -> bool {
    x == 0.5
}

pub fn lossy_cast_site(n: usize) -> f32 {
    n as f32
}

// slm-lint: allow(no-unwrap)
pub fn bad_waiver_site() {}

pub fn waived_site(v: Option<u32>) -> u32 {
    // slm-lint: allow(no-unwrap) seeded: a documented waiver suppresses the next line
    v.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_regions_do_not_fire() {
        assert_eq!(unwrap_site(Some(1)), 1);
        let v: Option<u32> = Some(2);
        assert_eq!(v.unwrap(), 2);
        println!("prints are fine in tests");
    }
}
