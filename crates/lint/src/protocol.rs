//! `--protocol`: static wire-protocol coverage.
//!
//! Proves, offline, that every `MsgType` variant is (a) decodable —
//! referenced inside the decode function in the wire module, (b)
//! handled by every configured handler group (server, client), and (c)
//! enumerated in the `MsgType::ALL` annotation the protocol model
//! checker and round-trip tests iterate. A variant that exists but is
//! missing an arm is exactly the drift the multi-UE and
//! pipeline-parallel rewrites would introduce silently.
//!
//! Findings anchor at the variant's declaration line so the fix site
//! (add the arm, or delete the variant) is one click away.

use crate::index::FileIndex;
use crate::Finding;

/// Where the protocol's enum, decode fn and handler arms live.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Path suffix of the file declaring the enum (and the decode fn).
    pub enum_file: String,
    /// Enum name (`MsgType`).
    pub enum_name: String,
    /// Decode function name (`from_u8`).
    pub decode_fn: String,
    /// Handler groups: name → path suffixes whose union must reference
    /// every variant.
    pub groups: Vec<(String, Vec<String>)>,
}

impl ProtocolSpec {
    /// The workspace's sl-net wire protocol.
    pub fn workspace_default() -> Self {
        ProtocolSpec {
            enum_file: "crates/net/src/wire.rs".to_string(),
            enum_name: "MsgType".to_string(),
            decode_fn: "from_u8".to_string(),
            groups: vec![
                (
                    "server".to_string(),
                    vec!["crates/net/src/server.rs".to_string()],
                ),
                (
                    // The UE side touches RfSamples/Activations through
                    // `Request::msg_type()` in wire.rs, so the client
                    // group is the union of both files.
                    "client".to_string(),
                    vec![
                        "crates/net/src/client.rs".to_string(),
                        "crates/net/src/wire.rs".to_string(),
                    ],
                ),
            ],
        }
    }
}

/// Runs the protocol coverage check over an indexed workspace.
pub fn check_protocol(files: &[FileIndex], spec: &ProtocolSpec) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(wire) = files.iter().find(|f| f.path.ends_with(&spec.enum_file)) else {
        out.push(Finding {
            rule: "protocol-spec".to_string(),
            file: spec.enum_file.clone(),
            line: 0,
            col: 0,
            message: format!(
                "protocol enum file '{}' not found in workspace",
                spec.enum_file
            ),
        });
        return out;
    };
    let Some(en) = wire.enums.iter().find(|e| e.name == spec.enum_name) else {
        out.push(Finding {
            rule: "protocol-spec".to_string(),
            file: wire.path.clone(),
            line: 0,
            col: 0,
            message: format!("enum '{}' not found in '{}'", spec.enum_name, wire.path),
        });
        return out;
    };

    // (a) Decode arms: `EnumName::Variant` refs inside the decode fn's
    // token span. FnItem does not retain spans, so locate the fn
    // directly in path_refs by line window: find the decode fn line
    // range from the fns list.
    let decode_refs = decode_variant_refs(wire, spec);
    for (variant, line) in &en.variants {
        if !decode_refs.contains(variant) {
            out.push(Finding {
                rule: "protocol-decode".to_string(),
                file: wire.path.clone(),
                line: *line,
                col: 0,
                message: format!(
                    "{}::{variant} has no decode arm in {}::{}",
                    spec.enum_name, spec.enum_file, spec.decode_fn
                ),
            });
        }
    }

    // (b) Handler groups.
    for (group, suffixes) in &spec.groups {
        let mut handled: Vec<&str> = Vec::new();
        for f in files {
            if !suffixes.iter().any(|s| f.path.ends_with(s.as_str())) {
                continue;
            }
            for p in &f.path_refs {
                if !p.in_test && p.head == spec.enum_name {
                    handled.push(p.tail.as_str());
                }
            }
        }
        for (variant, line) in &en.variants {
            if !handled.iter().any(|h| h == variant) {
                out.push(Finding {
                    rule: "protocol-handler".to_string(),
                    file: wire.path.clone(),
                    line: *line,
                    col: 0,
                    message: format!(
                        "{}::{variant} has no handler arm in group '{group}' ({})",
                        spec.enum_name,
                        suffixes.join(", ")
                    ),
                });
            }
        }
    }

    // (c) The ALL annotation.
    match all_const_refs(wire, spec) {
        None => out.push(Finding {
            rule: "protocol-annotation".to_string(),
            file: wire.path.clone(),
            line: en.line,
            col: 0,
            message: format!(
                "enum {} lacks a `const ALL` annotation enumerating every variant",
                spec.enum_name
            ),
        }),
        Some(all) => {
            for (variant, line) in &en.variants {
                if !all.contains(variant) {
                    out.push(Finding {
                        rule: "protocol-annotation".to_string(),
                        file: wire.path.clone(),
                        line: *line,
                        col: 0,
                        message: format!(
                            "{}::{variant} is missing from {}::ALL",
                            spec.enum_name, spec.enum_name
                        ),
                    });
                }
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

/// Variants referenced as `Enum::Variant` inside the decode fn. The
/// index keeps fn body facts but not token spans, so this re-lexes the
/// path refs by line window: from the decode fn's `fn` line to the next
/// fn's line (or EOF).
fn decode_variant_refs(wire: &FileIndex, spec: &ProtocolSpec) -> Vec<String> {
    let mut fn_lines: Vec<(u32, &str)> =
        wire.fns.iter().map(|f| (f.line, f.name.as_str())).collect();
    fn_lines.sort_unstable();
    let Some(pos) = fn_lines.iter().position(|(_, n)| *n == spec.decode_fn) else {
        return Vec::new();
    };
    let start = fn_lines[pos].0;
    let end = fn_lines.get(pos + 1).map(|(l, _)| *l).unwrap_or(u32::MAX);
    wire.path_refs
        .iter()
        .filter(|p| p.head == spec.enum_name && p.line >= start && p.line < end)
        .map(|p| p.tail.clone())
        .collect()
}

/// Variants listed in the `const ALL` initializer, when present.
fn all_const_refs(wire: &FileIndex, spec: &ProtocolSpec) -> Option<Vec<String>> {
    wire.consts.iter().find(|c| c.name == "ALL").map(|c| {
        c.refs
            .iter()
            .filter(|(head, _)| head == &spec.enum_name)
            .map(|(_, tail)| tail.clone())
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::workspace::TargetKind;

    fn wire_src(missing_decode: bool) -> String {
        let decode_c = if missing_decode {
            ""
        } else {
            "3 => Some(Msg::C),"
        };
        format!(
            "pub enum Msg {{ A = 1, B = 2, C = 3 }}\n\
             impl Msg {{\n\
               pub fn from_u8(v: u8) -> Option<Msg> {{\n\
                 match v {{ 1 => Some(Msg::A), 2 => Some(Msg::B), {decode_c} _ => None }}\n\
               }}\n\
             }}\n"
        )
    }

    fn spec() -> ProtocolSpec {
        ProtocolSpec {
            enum_file: "w/wire.rs".to_string(),
            enum_name: "Msg".to_string(),
            decode_fn: "from_u8".to_string(),
            groups: vec![("server".to_string(), vec!["w/server.rs".to_string()])],
        }
    }

    #[test]
    fn missing_decode_and_handler_arms_are_found() {
        let files = vec![
            index_file(&wire_src(true), "w/wire.rs", "w", TargetKind::Lib),
            index_file(
                "fn h(m: Msg) { match m { Msg::A => {} Msg::B => {} _ => {} } }",
                "w/server.rs",
                "w",
                TargetKind::Lib,
            ),
        ];
        let findings = check_protocol(&files, &spec());
        let rules: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        // Variant C (line 1) misses decode, handler and annotation.
        assert!(rules.contains(&("protocol-decode", 1)), "{findings:?}");
        assert!(rules.contains(&("protocol-handler", 1)), "{findings:?}");
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "protocol-annotation" && f.message.contains("lacks")),
            "{findings:?}"
        );
    }

    #[test]
    fn full_coverage_still_requires_the_all_annotation() {
        let files = vec![
            index_file(&wire_src(false), "w/wire.rs", "w", TargetKind::Lib),
            index_file(
                "fn h(m: Msg) { match m { Msg::A => {} Msg::B => {} Msg::C => {} } }",
                "w/server.rs",
                "w",
                TargetKind::Lib,
            ),
        ];
        let findings = check_protocol(&files, &spec());
        assert!(
            findings.iter().all(|f| f.rule == "protocol-annotation"),
            "{findings:?}"
        );
    }

    #[test]
    fn test_only_handlers_do_not_count() {
        let files = vec![
            index_file(&wire_src(false), "w/wire.rs", "w", TargetKind::Lib),
            index_file(
                "fn h(m: Msg) { match m { Msg::A => {} Msg::B => {} _ => {} } }\n\
                 #[cfg(test)]\nmod tests { fn t() { let _ = Msg::C; } }",
                "w/server.rs",
                "w",
                TargetKind::Lib,
            ),
        ];
        let findings = check_protocol(&files, &spec());
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "protocol-handler" && f.message.contains("Msg::C")),
            "{findings:?}"
        );
    }
}
