//! `deps-policy`: external dependencies of every workspace manifest must
//! stay inside the allowed set.
//!
//! The reproduction is deliberately dependency-light — the model stack,
//! channel model and telemetry are all written against `std`, and the
//! only external crates tolerated are the RNG and the dev-only test and
//! bench harnesses. This pass parses just enough TOML to enumerate
//! dependency names: section headers, `name = ...` entries inside
//! dependency sections, and the `[dependencies.NAME]` long form.

use crate::{Finding, LintConfig};
use std::path::Path;

/// Dependency sections subject to the policy (target-specific sections
/// such as `[target.'cfg(unix)'.dependencies]` do not occur in this
/// workspace and would be flagged as unparsed by the manifest check in
/// `verify.sh`'s clippy stage anyway).
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Scans one manifest and appends a `deps-policy` finding per external
/// dependency that is not in `config.allowed_external_deps`.
pub fn check_manifest(text: &str, path: &Path, config: &LintConfig, out: &mut Vec<Finding>) {
    let display = path.display().to_string();
    // Section the cursor is inside, if it is a dependency section.
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = DEP_SECTIONS.contains(&section);
            if !in_dep_section {
                // `[dependencies.NAME]` / `[workspace.dependencies.NAME]`
                // long form: the name is the last path segment.
                for prefix in ["dependencies.", "workspace.dependencies."] {
                    if let Some(name) = section.strip_prefix(prefix) {
                        check_dep(name, line, raw, idx, &display, config, out);
                        break;
                    }
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // `name = "1.0"` or `name = { version = ... }` or `name.workspace = true`
        let key = line
            .split('=')
            .next()
            .map(str::trim)
            .unwrap_or_default()
            .split('.')
            .next()
            .map(str::trim)
            .unwrap_or_default();
        if key.is_empty() {
            continue;
        }
        check_dep(key, line, raw, idx, &display, config, out);
    }
}

fn check_dep(
    name: &str,
    line: &str,
    raw: &str,
    idx: usize,
    file: &str,
    config: &LintConfig,
    out: &mut Vec<Finding>,
) {
    // Internal: workspace path crates. Anything declared by path is part
    // of this repo, and all first-party crates use the `sl-` prefix or
    // are the umbrella package itself.
    if name.starts_with("sl-") || name == "split-mmwave" || line.contains("path =") {
        return;
    }
    if config.allowed_external_deps.contains(name) {
        return;
    }
    let col = raw.find(name).map(|c| c + 1).unwrap_or(1);
    out.push(Finding {
        rule: "deps-policy".into(),
        file: file.into(),
        line: (idx + 1) as u32,
        col: col as u32,
        message: format!(
            "external dependency `{name}` is not in the allowed set ({})",
            config
                .allowed_external_deps
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_manifest(
            text,
            &PathBuf::from("Cargo.toml"),
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    #[test]
    fn allowed_and_internal_deps_pass() {
        let toml = r#"
[package]
name = "sl-x"

[dependencies]
sl-tensor = { workspace = true }
rand = "0.9"

[dev-dependencies]
proptest.workspace = true
criterion = { workspace = true }
"#;
        assert!(run(toml).is_empty());
    }

    #[test]
    fn unknown_external_dep_is_flagged() {
        let toml = "[dependencies]\nserde = \"1\"\n";
        let findings = run(toml);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "deps-policy");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("`serde`"));
    }

    #[test]
    fn long_form_section_is_flagged() {
        let toml = "[dependencies.tokio]\nversion = \"1\"\n";
        let findings = run(toml);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`tokio`"));
    }

    #[test]
    fn workspace_dependencies_are_checked() {
        let toml = "[workspace.dependencies]\nrand = \"0.9\"\nndarray = \"0.16\"\n";
        let findings = run(toml);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`ndarray`"));
    }

    #[test]
    fn path_deps_are_internal() {
        let toml = "[dependencies]\nhelper = { path = \"../helper\" }\n";
        assert!(run(toml).is_empty());
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let toml = "[package]\nserde = \"oops\"\n[features]\ntokio = []\n";
        assert!(run(toml).is_empty());
    }
}
