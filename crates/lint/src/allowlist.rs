//! Burn-down allowlist: a checked-in ratchet for known findings.
//!
//! `crates/lint/allowlist.txt` holds one `<rule-id> <path>` line per
//! tolerated finding site. Semantics are *exact-count*: if a file gains
//! a second `lossy-cast` while the allowlist grants one, the extra
//! finding fails the run; if a granted entry no longer matches any
//! finding it is reported as `stale-allowlist` so the list can only
//! shrink. `slm-lint --update-allowlist` regenerates the file from the
//! current findings (for the initial capture or after a burn-down).

use crate::Finding;
use std::collections::BTreeMap;

/// Parsed allowlist: (rule, file) → granted count.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    grants: BTreeMap<(String, String), usize>,
}

/// Outcome of reconciling findings against the allowlist.
#[derive(Debug)]
pub struct Reconciled {
    /// Findings not covered by a grant — these fail the run.
    pub active: Vec<Finding>,
    /// Findings absorbed by the allowlist.
    pub allowlisted: Vec<Finding>,
    /// Synthetic `stale-allowlist` findings for grants with no match.
    pub stale: Vec<Finding>,
}

impl Allowlist {
    /// Parses the `<rule-id> <path>` line format. Blank lines and `#`
    /// comments are skipped; repeating a line grants one more instance.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut grants: BTreeMap<(String, String), usize> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "allowlist line {}: expected `<rule-id> <path>`, got {:?}",
                    idx + 1,
                    line
                ));
            };
            *grants
                .entry((rule.to_string(), path.to_string()))
                .or_insert(0) += 1;
        }
        Ok(Allowlist { grants })
    }

    /// Total granted instances (the burn-down metric).
    pub fn len(&self) -> usize {
        self.grants.values().sum()
    }

    /// True when no grants remain.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Splits `findings` into active / allowlisted and reports stale
    /// grants. Counts are exact per (rule, file): surplus findings stay
    /// active, surplus grants become stale.
    pub fn reconcile(&self, findings: Vec<Finding>) -> Reconciled {
        let mut budget = self.grants.clone();
        let mut active = Vec::new();
        let mut allowlisted = Vec::new();
        for finding in findings {
            let key = (finding.rule.clone(), finding.file.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    allowlisted.push(finding);
                }
                _ => active.push(finding),
            }
        }
        let stale = budget
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|((rule, file), n)| Finding {
                rule: "stale-allowlist".into(),
                file: file.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "allowlist grants {n} `{rule}` finding(s) here that no longer occur; \
                     remove the entry (the allowlist must only shrink)"
                ),
            })
            .collect();
        Reconciled {
            active,
            allowlisted,
            stale,
        }
    }

    /// Renders an allowlist that exactly covers `findings`, sorted for a
    /// stable diff.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# slm-lint burn-down allowlist: one `<rule-id> <path>` line per tolerated\n\
             # finding. Exact-count semantics; this file must only shrink over time.\n\
             # Regenerate after a burn-down with `slm-lint --update-allowlist`.\n",
        );
        for ((rule, file), n) in counts {
            for _ in 0..n {
                out.push_str(&rule);
                out.push(' ');
                out.push_str(&file);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parse_counts_duplicates_and_skips_comments() {
        let list = Allowlist::parse(
            "# header\n\nlossy-cast crates/tensor/src/init.rs\nlossy-cast crates/tensor/src/init.rs\nno-unwrap crates/scene/src/io.rs\n",
        )
        .unwrap();
        assert_eq!(list.len(), 3);
        assert!(!list.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = Allowlist::parse("lossy-cast\n").unwrap_err();
        assert!(err.contains("line 1"));
        assert!(Allowlist::parse("a b c\n").is_err());
    }

    #[test]
    fn reconcile_is_exact_count() {
        let list = Allowlist::parse("lossy-cast a.rs\n").unwrap();
        let r = list.reconcile(vec![
            finding("lossy-cast", "a.rs", 3),
            finding("lossy-cast", "a.rs", 9),
        ]);
        assert_eq!(r.allowlisted.len(), 1);
        assert_eq!(r.active.len(), 1);
        assert_eq!(r.active[0].line, 9);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn unused_grants_are_stale() {
        let list = Allowlist::parse("no-unwrap gone.rs\n").unwrap();
        let r = list.reconcile(vec![]);
        assert!(r.active.is_empty());
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].rule, "stale-allowlist");
        assert!(r.stale[0].message.contains("no-unwrap"));
    }

    #[test]
    fn render_round_trips() {
        let findings = vec![
            finding("lossy-cast", "b.rs", 1),
            finding("lossy-cast", "b.rs", 2),
            finding("no-print", "a.rs", 7),
        ];
        let rendered = Allowlist::render(&findings);
        let list = Allowlist::parse(&rendered).unwrap();
        assert_eq!(list.len(), 3);
        let r = list.reconcile(findings);
        assert!(r.active.is_empty());
        assert!(r.stale.is_empty());
        assert_eq!(r.allowlisted.len(), 3);
    }
}
