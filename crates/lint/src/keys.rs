//! `--keys`: telemetry key-namespace contract.
//!
//! Harvests every key literal published through the `sl-telemetry`
//! publish surface (`inc`/`add`/`gauge_set`/`gauge_add`/`observe`/
//! `merge_histogram`/`series_point`, including `format!`-built keys
//! whose placeholders become `*` wildcard segments and bare scoped
//! names which are absorbed under a prefix and therefore harvest as
//! `*.<name>`), then cross-checks the harvest against the declared key
//! registry:
//!
//! - `key-undeclared` — a publish site whose key unifies with no
//!   declared pattern (namespace drift at the source).
//! - `key-dead` — a declared pattern no publish site can produce.
//! - `key-unread` — a declaration tagged with a reader (`report`,
//!   `top`) whose reader file shows no evidence of consuming it
//!   (publish-but-never-consumed drift).
//! - `key-unpublished` — a reader lookup (`counter("…")`,
//!   `gauge("…")`, `histograms.get("…")`, `series.get("…")`) whose key
//!   unifies with no declared-and-published pattern
//!   (consume-but-never-published drift).
//! - `key-grammar` — a declared pattern or harvested literal violating
//!   the `sub.noun.verb` segment grammar (lowercase
//!   `[a-z][a-z0-9_]*` segments, or `*`).
//!
//! Wildcards match **one or more** dot segments on either side, so the
//! declared family `net.session.*` unifies with both the scoped bare
//! publish `*.steps` and the concrete reader key `net.session.3.steps`.

use crate::index::{FileIndex, StrRef};
use crate::workspace::TargetKind;
use crate::Finding;

/// A declared key pattern, as fed to [`check_keys`].
#[derive(Debug, Clone)]
pub struct KeySpec {
    /// Dot-separated pattern; `*` segments match ≥1 concrete segments.
    pub pattern: String,
    /// Reader names (see [`READER_FILES`]) that are expected to consume
    /// keys from this family.
    pub readers: Vec<String>,
}

impl KeySpec {
    /// Convenience constructor.
    pub fn new(pattern: &str, readers: &[&str]) -> Self {
        KeySpec {
            pattern: pattern.to_string(),
            readers: readers.iter().map(|r| r.to_string()).collect(),
        }
    }
}

/// Reader name → path suffix of the file that consumes the keys.
pub const READER_FILES: &[(&str, &str)] = &[
    ("report", "crates/bench/src/report.rs"),
    ("top", "crates/net/src/bin/slm-top.rs"),
];

/// Telemetry publish methods whose first argument is a key.
const PUBLISH_METHODS: &[&str] = &[
    "inc",
    "add",
    "gauge_set",
    "gauge_add",
    "observe",
    "merge_histogram",
    "series_point",
];

/// Reader lookup methods whose first argument is a key.
const CONSUME_METHODS: &[&str] = &["counter", "gauge"];

/// Map receivers whose `.get("…")` lookups count as key consumption.
const CONSUME_MAPS: &[&str] = &["counters", "gauges", "histograms", "series"];

/// A harvested publish or consume site.
#[derive(Debug, Clone)]
pub struct KeySite {
    /// Normalized pattern (placeholders → `*`, bare names → `*.name`).
    pub pattern: String,
    /// Source file (workspace-relative).
    pub file: String,
    /// 1-based line / column.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Harvests publish sites from non-test library/binary code.
pub fn harvest_publishes(files: &[FileIndex]) -> Vec<KeySite> {
    let mut out = Vec::new();
    for f in files {
        if f.target == TargetKind::TestLike {
            continue;
        }
        for s in &f.strings {
            if s.in_test || s.byte {
                continue;
            }
            if let Some(pattern) = publish_pattern(s) {
                out.push(KeySite {
                    pattern,
                    file: f.path.clone(),
                    line: s.line,
                    col: s.col,
                });
            }
        }
    }
    out
}

/// The publish pattern of one string literal, when its call context is
/// a publish method (directly, or through `format!` as first argument).
/// All-wildcard patterns (e.g. `MetricsRegistry::merge_prefixed`'s
/// `{prefix}.{k}` re-publish plumbing) carry no contract information
/// and are dropped.
fn publish_pattern(s: &StrRef) -> Option<String> {
    let call = s.call.as_ref()?;
    let pattern =
        if call.method && call.first_arg && PUBLISH_METHODS.contains(&call.callee.as_str()) {
            normalize(&s.text, false)
        } else if call.callee == "format" && call.is_macro {
            let outer = s.outer_call.as_ref()?;
            if outer.method && outer.first_arg && PUBLISH_METHODS.contains(&outer.callee.as_str()) {
                normalize(&s.text, true)
            } else {
                return None;
            }
        } else {
            return None;
        };
    if pattern.split('.').all(|seg| seg == "*") {
        return None;
    }
    Some(pattern)
}

/// Harvests reader lookups from the configured reader files, keyed by
/// reader name.
pub fn harvest_consumes(files: &[FileIndex]) -> Vec<(String, KeySite)> {
    let mut out = Vec::new();
    for (reader, suffix) in READER_FILES {
        let Some(f) = files.iter().find(|f| f.path.ends_with(suffix)) else {
            continue;
        };
        for s in &f.strings {
            if s.in_test || s.byte {
                continue;
            }
            let Some(call) = s.call.as_ref() else {
                continue;
            };
            let consumes =
                (call.method && call.first_arg && CONSUME_METHODS.contains(&call.callee.as_str()))
                    || (call.callee == "get"
                        && call.method
                        && call.first_arg
                        && call
                            .qualifier
                            .as_deref()
                            .is_some_and(|q| CONSUME_MAPS.contains(&q)));
            if consumes {
                out.push((
                    reader.to_string(),
                    KeySite {
                        pattern: normalize(&s.text, false),
                        file: f.path.clone(),
                        line: s.line,
                        col: s.col,
                    },
                ));
            }
        }
    }
    out
}

/// Normalizes a harvested literal into a pattern: `format!` placeholder
/// segments become `*`; dotless bare names (scoped publishes, absorbed
/// under a prefix at runtime) become `*.name`.
pub fn normalize(text: &str, from_format: bool) -> String {
    let mut pat: String = if from_format {
        text.split('.')
            .map(|seg| if seg.contains('{') { "*" } else { seg })
            .collect::<Vec<_>>()
            .join(".")
    } else {
        text.to_string()
    };
    if !pat.contains('.') && pat != "*" {
        pat = format!("*.{pat}");
    }
    pat
}

/// `true` when the two patterns can denote a common concrete key; `*`
/// matches one or more segments on either side.
pub fn unify(a: &str, b: &str) -> bool {
    let sa: Vec<&str> = a.split('.').collect();
    let sb: Vec<&str> = b.split('.').collect();
    unify_segs(&sa, &sb)
}

fn unify_segs(a: &[&str], b: &[&str]) -> bool {
    match (a.first(), b.first()) {
        (None, None) => true,
        (Some(&"*"), _) => (1..=b.len()).any(|k| unify_segs(&a[1..], &b[k..])),
        (_, Some(&"*")) => unify_segs(b, a),
        (Some(x), Some(y)) => x == y && unify_segs(&a[1..], &b[1..]),
        _ => false,
    }
}

/// Grammar check for one pattern: ≥2 segments, each `*` or
/// `[a-z][a-z0-9_]*`.
fn grammar_error(pattern: &str) -> Option<String> {
    let segs: Vec<&str> = pattern.split('.').collect();
    if segs.len() < 2 {
        return Some(format!(
            "key '{pattern}' has a single segment; keys are dot-separated sub.noun.verb names"
        ));
    }
    for seg in segs {
        if seg == "*" {
            continue;
        }
        let ok = seg.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !ok {
            return Some(format!(
                "key segment '{seg}' in '{pattern}' violates the [a-z][a-z0-9_]* grammar"
            ));
        }
    }
    None
}

/// Locates a declaration's source line by finding its pattern literal
/// in a registry file.
fn decl_site(files: &[FileIndex], pattern: &str) -> (String, u32, u32) {
    for f in files {
        if !f.path.ends_with("registry.rs") {
            continue;
        }
        for s in &f.strings {
            if s.text == pattern {
                return (f.path.clone(), s.line, s.col);
            }
        }
    }
    ("crates/telemetry/src/registry.rs".to_string(), 0, 0)
}

/// Runs the full key contract over an indexed workspace.
pub fn check_keys(files: &[FileIndex], specs: &[KeySpec]) -> Vec<Finding> {
    let mut out = Vec::new();
    let publishes = harvest_publishes(files);
    let consumes = harvest_consumes(files);

    // Grammar: declared patterns and concrete harvested keys.
    for spec in specs {
        if let Some(msg) = grammar_error(&spec.pattern) {
            let (file, line, col) = decl_site(files, &spec.pattern);
            out.push(Finding {
                rule: "key-grammar".to_string(),
                file,
                line,
                col,
                message: msg,
            });
        }
    }
    for site in &publishes {
        if let Some(msg) = grammar_error(&site.pattern) {
            out.push(Finding {
                rule: "key-grammar".to_string(),
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                message: msg,
            });
        }
    }

    // Publish sites must be declared.
    for site in &publishes {
        if !specs.iter().any(|sp| unify(&sp.pattern, &site.pattern)) {
            out.push(Finding {
                rule: "key-undeclared".to_string(),
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "published key '{}' matches no declared pattern in the telemetry registry",
                    site.pattern
                ),
            });
        }
    }

    // Declarations must be publishable...
    for spec in specs {
        let published = publishes.iter().any(|s| unify(&spec.pattern, &s.pattern));
        if !published {
            let (file, line, col) = decl_site(files, &spec.pattern);
            out.push(Finding {
                rule: "key-dead".to_string(),
                file,
                line,
                col,
                message: format!(
                    "declared key '{}' is never published by any workspace publish site",
                    spec.pattern
                ),
            });
        }
        // ... and read where they claim to be.
        for reader in &spec.readers {
            if !reader_evidence(files, reader, &spec.pattern) {
                let (file, line, col) = decl_site(files, &spec.pattern);
                out.push(Finding {
                    rule: "key-unread".to_string(),
                    file,
                    line,
                    col,
                    message: format!(
                        "declared key '{}' is tagged reader '{reader}' but that reader never consumes it",
                        spec.pattern
                    ),
                });
            }
        }
    }

    // Reader lookups must land on declared, published families.
    for (reader, site) in &consumes {
        let backed = specs.iter().any(|sp| {
            unify(&sp.pattern, &site.pattern)
                && publishes.iter().any(|p| unify(&sp.pattern, &p.pattern))
        });
        if !backed {
            out.push(Finding {
                rule: "key-unpublished".to_string(),
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "reader '{reader}' consumes key '{}' which no declared+published family covers",
                    site.pattern
                ),
            });
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    out
}

/// Evidence that `reader` consumes keys from `pattern`'s family: a
/// non-test literal in the reader file that unifies with the pattern,
/// or that equals its final concrete segment (per-session bare lookups
/// in slm-top read scoped names after the prefix is stripped).
fn reader_evidence(files: &[FileIndex], reader: &str, pattern: &str) -> bool {
    let Some(suffix) = READER_FILES
        .iter()
        .find(|(name, _)| name == &reader)
        .map(|(_, s)| *s)
    else {
        return false;
    };
    let Some(f) = files.iter().find(|f| f.path.ends_with(suffix)) else {
        return false;
    };
    let last = pattern.rsplit('.').next().unwrap_or(pattern);
    f.strings.iter().any(|s| {
        !s.in_test
            && !s.byte
            && !s.text.is_empty()
            && (unify(pattern, &normalize(&s.text, false)) || (last != "*" && s.text == last))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;

    #[test]
    fn unify_is_symmetric_and_wildcards_span_segments() {
        assert!(unify("net.session.*", "net.session.3.steps"));
        assert!(unify("net.session.*", "*.steps"));
        assert!(unify("*.steps", "net.session.*"));
        assert!(unify("train.loss", "train.loss"));
        assert!(!unify("train.loss", "train.loss.extra"));
        assert!(!unify("*.steps", "train.loss"));
        assert!(unify("*.host_s", "train.model.host_s"));
        assert!(!unify("net.*", "net"));
    }

    #[test]
    fn normalize_wildcardizes_placeholders_and_bare_names() {
        assert_eq!(normalize("net.session.{id}", true), "net.session.*");
        assert_eq!(normalize("{base}.flops", true), "*.flops");
        assert_eq!(normalize("steps", false), "*.steps");
        assert_eq!(normalize("train.loss", false), "train.loss");
    }

    #[test]
    fn grammar_rejects_uppercase_and_bare_keys() {
        assert!(grammar_error("train.loss").is_none());
        assert!(grammar_error("net.session.*").is_none());
        assert!(grammar_error("Train.loss").is_some());
        assert!(grammar_error("loss").is_some());
    }

    #[test]
    fn undeclared_and_dead_keys_are_found() {
        let src = "fn f(t: &mut T) { t.inc(\"bogus.key\"); t.observe(\"train.loss\", v); }";
        let files = vec![index_file(src, "crates/x/src/lib.rs", "x", TargetKind::Lib)];
        let specs = vec![
            KeySpec::new("train.loss", &[]),
            KeySpec::new("ghost.key", &[]),
        ];
        let findings = check_keys(&files, &specs);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"key-undeclared"), "{findings:?}");
        assert!(rules.contains(&"key-dead"), "{findings:?}");
        let undeclared = findings
            .iter()
            .find(|f| f.rule == "key-undeclared")
            .unwrap();
        assert_eq!(undeclared.line, 1);
        assert!(undeclared.message.contains("bogus.key"));
    }

    #[test]
    fn test_code_and_byte_strings_are_never_harvested() {
        let src = "#[cfg(test)]\nmod tests { fn f(t: &mut T) { t.inc(\"fake.key\"); } }\nfn g(t: &mut T) { t.inc(b\"raw.key\"); }";
        let files = vec![index_file(src, "crates/x/src/lib.rs", "x", TargetKind::Lib)];
        assert!(harvest_publishes(&files).is_empty());
    }
}
