//! The repo-specific lint rules, run over the token stream.
//!
//! Rule IDs (see README §Static analysis):
//!
//! * `no-unwrap` — no `.unwrap()` in non-test library code.
//! * `no-expect` — no `.expect(..)` in non-test library code; a
//!   documented contract panic carries an inline waiver instead.
//! * `no-nondeterminism` — no `rand::rng()` / `thread_rng()` /
//!   `Instant::now()` / `SystemTime::now()` / `thread::spawn()` /
//!   `available_parallelism()` / `TcpListener::bind()` /
//!   `TcpStream::connect()` / `UdpSocket::bind()` in library code
//!   outside `sl-telemetry` (simulated time and seeded RNGs only; OS
//!   threads are sanctioned solely inside `sl-tensor`'s ComputePool and
//!   `sl-net`'s server, and real sockets solely inside `sl-net`'s
//!   framed transport — each via inline waivers).
//! * `no-print` — no `println!` / `eprintln!` in library code outside
//!   bins and the telemetry sinks.
//! * `float-cmp` — no `==` / `!=` against float literals.
//! * `lossy-cast` — no lossy `as` casts (`as f32`, narrowing integer
//!   targets) in the numeric-kernel crates.
//! * `unsafe-containment` — no `unsafe` in library code outside the
//!   sanctioned path prefixes (`LintConfig::unsafe_allowed_paths`,
//!   default `crates/tensor/src/simd/` — the explicitly-vectorized
//!   microkernels); the ComputePool's scoped pointer plumbing carries
//!   inline waivers.
//! * `bad-waiver` — a malformed `slm-lint: allow(..)` comment (missing
//!   rule id or reason).
//!
//! Tokens inside `#[cfg(test)]` items and `mod tests { .. }` blocks are
//! exempt from every rule.
//!
//! # Waivers
//!
//! A finding is waived by a comment on the same line or the line above:
//!
//! ```text
//! // slm-lint: allow(no-expect) cache is Some by the forward/backward contract
//! let x = self.cache.take().expect("backward before forward");
//! ```
//!
//! The reason is mandatory; waivers are counted and reported, so they
//! stay visible in `slm-report` output.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::workspace::TargetKind;
use crate::{Finding, LintConfig};

/// Narrowing / precision-losing `as` targets flagged by `lossy-cast`.
const LOSSY_TARGETS: [&str; 7] = ["f32", "i8", "i16", "i32", "u8", "u16", "u32"];

/// Per-file lint context.
pub struct FileContext<'a> {
    /// Package the file belongs to (rule exemptions key off this).
    pub crate_name: &'a str,
    /// Target classification (lib / bin / test-like).
    pub target: TargetKind,
    /// Repo-relative path recorded in findings.
    pub path: &'a str,
}

/// The outcome of scanning one file.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Active findings (not waived).
    pub findings: Vec<Finding>,
    /// Findings covered by an inline waiver.
    pub waived: Vec<Finding>,
}

/// Scans one source file with every applicable rule.
pub fn scan_file(src: &str, ctx: &FileContext, config: &LintConfig) -> ScanResult {
    let out = lex(src);
    let in_test = test_region_mask(&out.tokens);
    let (waivers, mut raw) = parse_waivers(&out.comments, ctx);

    let toks = &out.tokens;
    let lib_only = ctx.target == TargetKind::Lib;
    if lib_only {
        rule_no_unwrap_expect(toks, &in_test, ctx, &mut raw);
        if !config.determinism_exempt.contains(ctx.crate_name) {
            rule_no_nondeterminism(toks, &in_test, ctx, &mut raw);
        }
        if !config.print_exempt.contains(ctx.crate_name) {
            rule_no_print(toks, &in_test, ctx, &mut raw);
        }
        rule_float_cmp(toks, &in_test, ctx, &mut raw);
        if config.lossy_cast_crates.contains(ctx.crate_name) {
            rule_lossy_cast(toks, &in_test, ctx, &mut raw);
        }
        rule_unsafe_containment(toks, &in_test, ctx, config, &mut raw);
    }

    let mut result = ScanResult::default();
    for f in raw {
        let waived = waivers
            .get(&f.rule)
            .is_some_and(|lines| lines.contains(&f.line));
        if waived && f.rule != "bad-waiver" {
            result.waived.push(f);
        } else {
            result.findings.push(f);
        }
    }
    result
        .findings
        .sort_by_key(|f| (f.line, f.col, f.rule.clone()));
    result
}

/// Marks every token inside a `#[cfg(test)]` item or a `mod tests {}`
/// block.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // `#[cfg(test)]` — allow `#![cfg(test)]` too.
        if is_punct(toks, i, "#") {
            let attr_start = if is_punct(toks, i + 1, "!") {
                i + 2
            } else {
                i + 1
            };
            if is_punct(toks, attr_start, "[") {
                let close = match matching_bracket(toks, attr_start, "[", "]") {
                    Some(c) => c,
                    None => break,
                };
                if is_cfg_test_attr(&toks[attr_start + 1..close]) {
                    let end = mark_item(toks, close + 1, &mut mask);
                    i = end;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        // Bare `mod tests {` (convention even without the attribute).
        if is_ident(toks, i, "mod") && is_ident(toks, i + 1, "tests") && is_punct(toks, i + 2, "{")
        {
            let close = matching_bracket(toks, i + 2, "{", "}").unwrap_or(toks.len() - 1);
            for m in &mut mask[i..=close] {
                *m = true;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// `cfg ( test )` — exactly, so `cfg(feature = "test-utils")` and
/// `cfg(not(test))` stay lintable.
fn is_cfg_test_attr(attr: &[Tok]) -> bool {
    attr.len() == 4
        && attr[0].kind == TokKind::Ident
        && attr[0].text == "cfg"
        && attr[1].text == "("
        && attr[2].kind == TokKind::Ident
        && attr[2].text == "test"
        && attr[3].text == ")"
}

/// Marks the item starting at `start` (skipping further attributes) up
/// to its closing `}` or terminating `;`, returning the index after it.
fn mark_item(toks: &[Tok], mut start: usize, mask: &mut [bool]) -> usize {
    // Skip stacked attributes between the cfg and the item.
    while is_punct(toks, start, "#") {
        let attr_start = if is_punct(toks, start + 1, "!") {
            start + 2
        } else {
            start + 1
        };
        match matching_bracket(toks, attr_start, "[", "]") {
            Some(close) => start = close + 1,
            None => return toks.len(),
        }
    }
    let mut j = start;
    while j < toks.len() {
        if is_punct(toks, j, ";") {
            // Braceless item (`#[cfg(test)] use ..;`).
            for m in &mut mask[start..=j] {
                *m = true;
            }
            return j + 1;
        }
        if is_punct(toks, j, "{") {
            let close = matching_bracket(toks, j, "{", "}").unwrap_or(toks.len() - 1);
            for m in &mut mask[start..=close] {
                *m = true;
            }
            return close + 1;
        }
        j += 1;
    }
    for m in &mut mask[start..] {
        *m = true;
    }
    toks.len()
}

/// Index of the bracket matching `toks[open]`, honoring nesting.
pub(crate) fn matching_bracket(
    toks: &[Tok],
    open: usize,
    open_s: &str,
    close_s: &str,
) -> Option<usize> {
    if !is_punct(toks, open, open_s) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_s {
                depth += 1;
            } else if t.text == close_s {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

pub(crate) fn is_punct(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

pub(crate) fn is_ident(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
}

/// Extracts waivers (`rule -> covered lines`) from comments; malformed
/// waiver comments become `bad-waiver` findings.
fn parse_waivers(
    comments: &[Comment],
    ctx: &FileContext,
) -> (BTreeMap<String, BTreeSet<u32>>, Vec<Finding>) {
    let mut waivers: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("slm-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let (rule, reason) = r.split_once(')')?;
            let rule = rule.trim();
            let reason = reason.trim_start_matches(':').trim();
            if rule.is_empty() || rule.contains(char::is_whitespace) {
                return None;
            }
            Some((rule.to_string(), reason.to_string()))
        });
        match parsed {
            Some((rule, reason)) if !reason.is_empty() => {
                let lines = waivers.entry(rule).or_default();
                lines.insert(c.line);
                if c.own_line {
                    lines.insert(c.line + 1);
                }
            }
            _ => findings.push(Finding {
                rule: "bad-waiver".into(),
                file: ctx.path.into(),
                line: c.line,
                col: 1,
                message: "malformed waiver: expected `slm-lint: allow(<rule-id>) <reason>` \
                          with a non-empty reason"
                    .into(),
            }),
        }
    }
    (waivers, findings)
}

fn push(out: &mut Vec<Finding>, ctx: &FileContext, tok: &Tok, rule: &str, message: String) {
    out.push(Finding {
        rule: rule.into(),
        file: ctx.path.into(),
        line: tok.line,
        col: tok.col,
        message,
    });
}

fn rule_no_unwrap_expect(
    toks: &[Tok],
    in_test: &[bool],
    ctx: &FileContext,
    out: &mut Vec<Finding>,
) {
    for (i, masked) in in_test.iter().enumerate() {
        if *masked || !is_punct(toks, i, ".") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !is_punct(toks, i + 2, "(") {
            continue;
        }
        match name.text.as_str() {
            "unwrap" => push(
                out,
                ctx,
                name,
                "no-unwrap",
                "`.unwrap()` in library code — return a Result or add a \
                 documented waiver"
                    .into(),
            ),
            "expect" => push(
                out,
                ctx,
                name,
                "no-expect",
                "`.expect(..)` in library code — return a Result or waive it \
                 with the contract that makes it unreachable"
                    .into(),
            ),
            _ => {}
        }
    }
}

fn rule_no_nondeterminism(
    toks: &[Tok],
    in_test: &[bool],
    ctx: &FileContext,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let call = |name: &str| -> String {
            format!(
                "`{name}` is nondeterministic — use seeded RNGs / the simulated \
                 clock (wall time belongs to sl-telemetry)"
            )
        };
        if t.text == "thread_rng" && is_punct(toks, i + 1, "(") {
            push(out, ctx, t, "no-nondeterminism", call("thread_rng()"));
        } else if t.text == "rand"
            && is_punct(toks, i + 1, "::")
            && is_ident(toks, i + 2, "rng")
            && is_punct(toks, i + 3, "(")
        {
            push(out, ctx, t, "no-nondeterminism", call("rand::rng()"));
        } else if (t.text == "Instant" || t.text == "SystemTime")
            && is_punct(toks, i + 1, "::")
            && is_ident(toks, i + 2, "now")
            && is_punct(toks, i + 3, "(")
        {
            push(
                out,
                ctx,
                t,
                "no-nondeterminism",
                call(&format!("{}::now()", t.text)),
            );
        } else if t.text == "thread"
            && is_punct(toks, i + 1, "::")
            && is_ident(toks, i + 2, "spawn")
            && is_punct(toks, i + 3, "(")
        {
            push(
                out,
                ctx,
                t,
                "no-nondeterminism",
                "`thread::spawn` introduces scheduling nondeterminism — parallel \
                 compute belongs to sl-tensor's ComputePool and connection \
                 handling to sl-net (waivered there)"
                    .to_string(),
            );
        } else if t.text == "available_parallelism" && is_punct(toks, i + 1, "(") {
            push(
                out,
                ctx,
                t,
                "no-nondeterminism",
                "`available_parallelism()` is host-dependent — results must never \
                 depend on it (pool sizing in sl-tensor carries a waiver)"
                    .to_string(),
            );
        } else if (t.text == "TcpListener" || t.text == "TcpStream" || t.text == "UdpSocket")
            && is_punct(toks, i + 1, "::")
            && (is_ident(toks, i + 2, "bind") || is_ident(toks, i + 2, "connect"))
            && is_punct(toks, i + 3, "(")
        {
            let method = &toks[i + 2].text;
            push(
                out,
                ctx,
                t,
                "no-nondeterminism",
                format!(
                    "`{}::{method}` performs real network I/O — sockets belong to \
                     sl-net's framed transport (waivered there)",
                    t.text
                ),
            );
        }
    }
}

fn rule_no_print(toks: &[Tok], in_test: &[bool], ctx: &FileContext, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text == "println" || t.text == "eprintln")
            && is_punct(toks, i + 1, "!")
        {
            push(
                out,
                ctx,
                t,
                "no-print",
                format!(
                    "`{}!` in library code — route output through sl-telemetry \
                     (bins may print)",
                    t.text
                ),
            );
        }
    }
}

fn rule_float_cmp(toks: &[Tok], in_test: &[bool], ctx: &FileContext, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_operand = |j: Option<usize>| {
            j.and_then(|j| toks.get(j))
                .is_some_and(|t| t.kind == TokKind::Number && t.is_float)
        };
        if float_operand(i.checked_sub(1)) || float_operand(Some(i + 1)) {
            push(
                out,
                ctx,
                t,
                "float-cmp",
                format!(
                    "`{}` against a float literal — compare with a tolerance \
                     or restructure",
                    t.text
                ),
            );
        }
    }
}

fn rule_lossy_cast(toks: &[Tok], in_test: &[bool], ctx: &FileContext, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] || !is_ident(toks, i, "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind == TokKind::Ident && LOSSY_TARGETS.contains(&target.text.as_str()) {
            push(
                out,
                ctx,
                &toks[i],
                "lossy-cast",
                format!(
                    "`as {}` may lose precision or truncate in a numeric kernel \
                     — justify with a waiver or use a checked conversion",
                    target.text
                ),
            );
        }
    }
}

fn rule_unsafe_containment(
    toks: &[Tok],
    in_test: &[bool],
    ctx: &FileContext,
    config: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if config
        .unsafe_allowed_paths
        .iter()
        .any(|p| ctx.path.starts_with(p.as_str()))
    {
        return;
    }
    for (i, masked) in in_test.iter().enumerate() {
        if *masked || !is_ident(toks, i, "unsafe") {
            continue;
        }
        push(
            out,
            ctx,
            &toks[i],
            "unsafe-containment",
            "`unsafe` outside the sanctioned SIMD module — raw-pointer and \
             intrinsic code belongs under crates/tensor/src/simd/, or carries \
             a documented waiver"
                .into(),
        );
    }
}

#[cfg(test)]
mod rule_tests {
    use super::*;

    fn scan(src: &str) -> ScanResult {
        scan_lib("sl-core", src)
    }

    fn scan_lib(crate_name: &str, src: &str) -> ScanResult {
        let ctx = FileContext {
            crate_name,
            target: TargetKind::Lib,
            path: "crates/x/src/lib.rs",
        };
        scan_file(src, &ctx, &LintConfig::default())
    }

    fn rules(r: &ScanResult) -> Vec<&str> {
        r.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_and_expect_flagged_in_lib() {
        let r = scan("fn f() { x.unwrap(); y.expect(\"msg\"); z.unwrap_or(0); }");
        assert_eq!(rules(&r), vec!["no-unwrap", "no-expect"]);
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = r#"
fn lib_code() { a.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { b.unwrap(); println!("ok"); }
}
"#;
        let r = scan(src);
        assert_eq!(rules(&r), vec!["no-unwrap"]);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn cfg_test_single_item_and_stacked_attrs() {
        let src = r#"
#[cfg(test)]
#[allow(dead_code)]
fn helper() { x.unwrap() }
fn real() { y.unwrap() }
"#;
        let r = scan(src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn cfg_not_test_still_linted() {
        let r = scan("#[cfg(not(test))]\nfn f() { x.unwrap(); }");
        assert_eq!(rules(&r), vec!["no-unwrap"]);
    }

    #[test]
    fn nondeterminism_patterns() {
        let src = "fn f() { let a = rand::rng(); let b = thread_rng(); \
                   let t = Instant::now(); let s = SystemTime::now(); \
                   let h = thread::spawn(|| ()); \
                   let p = thread::available_parallelism(); }";
        let r = scan(src);
        assert_eq!(rules(&r).len(), 6);
        assert!(rules(&r).iter().all(|&r| r == "no-nondeterminism"));
        // Telemetry is exempt.
        assert!(scan_lib("sl-telemetry", src).findings.is_empty());
    }

    #[test]
    fn socket_patterns_fire_outside_sl_net() {
        let src = "fn f() { let l = TcpListener::bind(\"a\"); \
                   let s = TcpStream::connect(\"a\"); \
                   let u = UdpSocket::bind(\"a\"); }";
        let r = scan(src);
        assert_eq!(rules(&r).len(), 3);
        assert!(rules(&r).iter().all(|&r| r == "no-nondeterminism"));
        assert!(r.findings[0].message.contains("sl-net"));
        // No exemption by crate — sl-net itself carries inline waivers.
        assert_eq!(scan_lib("sl-net", src).findings.len(), 3);
    }

    #[test]
    fn socket_patterns_do_not_fire_on_lookalikes() {
        // Only `bind`/`connect` called through the socket types count;
        // local addresses, strings and other methods are fine.
        let src = "fn f() { let a = TcpStream::from(x); stream.connect(); \
                   let s = \"TcpListener::bind(\"; let bind = 1; }";
        assert!(scan(src).findings.is_empty());
    }

    #[test]
    fn thread_patterns_do_not_fire_on_lookalikes() {
        // `spawn`/`available_parallelism` must be called through/`(`-adjacent
        // to count; module paths and bare idents are fine.
        let src = "fn f() { use std::thread; let s = \"thread::spawn(\"; \
                   let spawn = 1; let available_parallelism = 2; \
                   thread::sleep(d); }";
        assert!(scan(src).findings.is_empty());
    }

    #[test]
    fn print_rule_and_exemption() {
        let src = "fn f() { println!(\"a\"); eprintln!(\"b\"); }";
        assert_eq!(rules(&scan(src)), vec!["no-print", "no-print"]);
        assert!(scan_lib("sl-telemetry", src).findings.is_empty());
    }

    #[test]
    fn float_cmp_literals_only() {
        let r = scan("fn f() { if x == 0.0 {} if 1.5 != y {} if a == b {} if n == 3 {} }");
        assert_eq!(rules(&r), vec!["float-cmp", "float-cmp"]);
    }

    #[test]
    fn lossy_cast_scoped_to_kernel_crates() {
        let src = "fn f() { let a = i as f32; let b = x as u8; let c = y as f64; \
                   let d = z as usize; }";
        let r = scan_lib("sl-tensor", src);
        assert_eq!(rules(&r), vec!["lossy-cast", "lossy-cast"]);
        assert!(scan_lib("sl-core", src).findings.is_empty());
    }

    #[test]
    fn unsafe_flagged_outside_sanctioned_paths() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n\
                   unsafe impl Send for X {}";
        let r = scan(src);
        assert_eq!(rules(&r), vec!["unsafe-containment", "unsafe-containment"]);
    }

    #[test]
    fn unsafe_exempt_under_allowed_path_and_in_tests() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let ctx = FileContext {
            crate_name: "sl-tensor",
            target: TargetKind::Lib,
            path: "crates/tensor/src/simd/avx2.rs",
        };
        assert!(scan_file(src, &ctx, &LintConfig::default())
            .findings
            .is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t(p: *const u8) { unsafe { *p }; } }";
        assert!(scan(in_test).findings.is_empty());
    }

    #[test]
    fn unsafe_waiver_suppresses_the_site() {
        let src = "// slm-lint: allow(unsafe-containment) pool pointer contract\n\
                   unsafe impl Send for X {}";
        let r = scan(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.waived.len(), 1);
    }

    #[test]
    fn waiver_same_line_and_line_above() {
        let src = "\
fn f() {
    let a = c.take().expect(\"x\"); // slm-lint: allow(no-expect) forward/backward contract
    // slm-lint: allow(no-unwrap) checked two lines up
    let b = d.unwrap();
    let c = e.unwrap();
}";
        let r = scan(src);
        assert_eq!(r.waived.len(), 2);
        assert_eq!(rules(&r), vec!["no-unwrap"]);
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn waiver_requires_reason_and_rule() {
        let r = scan("// slm-lint: allow(no-unwrap)\nlet a = b.unwrap();");
        assert!(rules(&r).contains(&"bad-waiver"));
        assert!(rules(&r).contains(&"no-unwrap"), "waiver must not apply");
        let r2 = scan("// slm-lint: disable everything\nfn f() {}");
        assert_eq!(rules(&r2), vec!["bad-waiver"]);
    }

    #[test]
    fn literals_and_comments_never_match() {
        let src = r###"
fn f() {
    let s = "x.unwrap() and println!";
    let r = r#"thread_rng() "quoted""#;
    // a comment mentioning .unwrap() and Instant::now()
    /* nested /* SystemTime::now() */ still */
    let c = '\'';
}
"###;
        assert!(scan(src).findings.is_empty());
    }

    #[test]
    fn bins_and_tests_targets_are_exempt() {
        for target in [TargetKind::Bin, TargetKind::TestLike] {
            let ctx = FileContext {
                crate_name: "sl-core",
                target,
                path: "x.rs",
            };
            let r = scan_file(
                "fn main() { x.unwrap(); println!(\"ok\"); }",
                &ctx,
                &LintConfig::default(),
            );
            assert!(r.findings.is_empty(), "{target:?}");
        }
    }
}
