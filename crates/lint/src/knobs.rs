//! `--knobs`: `SLM_*` environment-knob contract.
//!
//! Harvests every `env::var("SLM_…")` read in non-test library/binary
//! code and cross-checks it against the central knob table declared in
//! `sl_telemetry::registry`:
//!
//! - `knob-undeclared` — an `SLM_*` read with no entry in the table.
//! - `knob-dead` — a declared knob no code reads.
//! - `knob-undoc` — a declared knob missing from README.md or
//!   DESIGN.md (every knob must be user-discoverable).
//!
//! Only literal first arguments of `env::var` count as reads; an
//! `SLM_`-shaped string anywhere else (log messages, docs, tests, byte
//! strings) is never harvested.

use crate::index::FileIndex;
use crate::workspace::TargetKind;
use crate::Finding;

/// A declared knob, as fed to [`check_knobs`].
#[derive(Debug, Clone)]
pub struct KnobSpec {
    /// Environment variable name (`SLM_…`).
    pub name: String,
    /// Human-readable default.
    pub default: String,
    /// Parse type (`u32`, `enum(off|summary|jsonl)`, `path`, …).
    pub parse: String,
    /// Doc anchor (section the knob is documented under).
    pub doc: String,
}

impl KnobSpec {
    /// Convenience constructor.
    pub fn new(name: &str, default: &str, parse: &str, doc: &str) -> Self {
        KnobSpec {
            name: name.to_string(),
            default: default.to_string(),
            parse: parse.to_string(),
            doc: doc.to_string(),
        }
    }
}

/// A harvested `env::var("SLM_…")` read.
#[derive(Debug, Clone)]
pub struct KnobSite {
    /// Knob name.
    pub name: String,
    /// Source file (workspace-relative).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Harvests `SLM_*` env reads from non-test library/binary code.
pub fn harvest_knobs(files: &[FileIndex]) -> Vec<KnobSite> {
    let mut out = Vec::new();
    for f in files {
        if f.target == TargetKind::TestLike {
            continue;
        }
        for s in &f.strings {
            if s.in_test || s.byte || !s.text.starts_with("SLM_") {
                continue;
            }
            let Some(call) = s.call.as_ref() else {
                continue;
            };
            if call.callee == "var" && call.first_arg && call.qualifier.as_deref() == Some("env") {
                out.push(KnobSite {
                    name: s.text.clone(),
                    file: f.path.clone(),
                    line: s.line,
                    col: s.col,
                });
            }
        }
    }
    out
}

/// Locates a knob declaration's source line in a registry file.
fn decl_site(files: &[FileIndex], name: &str) -> (String, u32, u32) {
    for f in files {
        if !f.path.ends_with("registry.rs") {
            continue;
        }
        for s in &f.strings {
            if s.text == name {
                return (f.path.clone(), s.line, s.col);
            }
        }
    }
    ("crates/telemetry/src/registry.rs".to_string(), 0, 0)
}

/// Runs the knob contract. `docs` pairs a doc name (`README.md`,
/// `DESIGN.md`) with its full text.
pub fn check_knobs(
    files: &[FileIndex],
    specs: &[KnobSpec],
    docs: &[(String, String)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let reads = harvest_knobs(files);

    for site in &reads {
        if !specs.iter().any(|k| k.name == site.name) {
            out.push(Finding {
                rule: "knob-undeclared".to_string(),
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "env knob '{}' is read here but missing from the sl-telemetry knob table",
                    site.name
                ),
            });
        }
    }

    for spec in specs {
        if !reads.iter().any(|r| r.name == spec.name) {
            let (file, line, col) = decl_site(files, &spec.name);
            out.push(Finding {
                rule: "knob-dead".to_string(),
                file,
                line,
                col,
                message: format!("declared knob '{}' is never read by any code", spec.name),
            });
        }
        for (doc_name, text) in docs {
            if !text.contains(&spec.name) {
                let (file, line, col) = decl_site(files, &spec.name);
                out.push(Finding {
                    rule: "knob-undoc".to_string(),
                    file,
                    line,
                    col,
                    message: format!(
                        "declared knob '{}' is not documented in {doc_name}",
                        spec.name
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;

    fn docs(readme: &str, design: &str) -> Vec<(String, String)> {
        vec![
            ("README.md".to_string(), readme.to_string()),
            ("DESIGN.md".to_string(), design.to_string()),
        ]
    }

    #[test]
    fn undeclared_dead_and_undocumented_knobs() {
        let src = "fn f() { std::env::var(\"SLM_ALPHA\").ok(); }";
        let files = vec![index_file(src, "crates/x/src/lib.rs", "x", TargetKind::Lib)];
        let specs = vec![KnobSpec::new("SLM_BETA", "1", "u32", "Docs")];
        let findings = check_knobs(&files, &specs, &docs("SLM_BETA", ""));
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"knob-undeclared"), "{findings:?}");
        assert!(rules.contains(&"knob-dead"), "{findings:?}");
        // SLM_BETA present in README but missing from DESIGN.
        assert_eq!(
            findings.iter().filter(|f| f.rule == "knob-undoc").count(),
            1,
            "{findings:?}"
        );
    }

    #[test]
    fn knob_shaped_text_outside_env_var_is_not_a_read() {
        let src = "fn f(t: &mut T) { t.warn(\"set SLM_THREADS to change this\"); let s = \"SLM_TRACE\"; }";
        let files = vec![index_file(src, "crates/x/src/lib.rs", "x", TargetKind::Lib)];
        assert!(harvest_knobs(&files).is_empty());
    }

    #[test]
    fn declared_read_documented_knob_is_clean() {
        let src = "fn f() { std::env::var(\"SLM_ALPHA\").ok(); }";
        let files = vec![index_file(src, "crates/x/src/lib.rs", "x", TargetKind::Lib)];
        let specs = vec![KnobSpec::new("SLM_ALPHA", "1", "u32", "Docs")];
        let findings = check_knobs(&files, &specs, &docs("SLM_ALPHA", "SLM_ALPHA"));
        assert!(findings.is_empty(), "{findings:?}");
    }
}
