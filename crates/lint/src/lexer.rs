//! A minimal token-level Rust lexer.
//!
//! Just enough lexical structure for the repo's lint rules: identifiers,
//! numbers (with float detection), the punctuation the rules match on
//! (`::`, `==`, `!=` are fused; everything else is a single character),
//! and — crucially — correct *skipping* of everything that could fake a
//! match: string literals, raw strings (any `#` depth), byte strings,
//! char literals (disambiguated from lifetimes), line comments and
//! nested block comments. Comments are preserved separately because
//! lint waivers live in them.
//!
//! This is not a full Rust lexer; it is a deliberately small scanner
//! whose failure mode is *skipping too much* (never attributing code to
//! a literal or vice versa on well-formed input).

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// String, raw-string or byte-string literal.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Numeric literal.
    Number,
    /// Punctuation; `::`, `==` and `!=` are fused, others single-char.
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Punct`, the operator text; for `Str`/`Char`,
    /// the literal without delimiters is not reconstructed — rules never
    /// look inside literals, so the text is empty for them).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
    /// `true` for `Number` tokens that are float literals (contain a
    /// decimal point, an exponent, or an `f32`/`f64` suffix).
    pub is_float: bool,
}

/// A comment with the line it starts on. `text` excludes the `//` / `/*`
/// delimiters' trailing newline but keeps the body verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` when the comment is the only thing on its line (ignoring
    /// leading whitespace) — such waiver comments cover the *next* line.
    pub own_line: bool,
    /// Comment body, delimiters stripped.
    pub text: String,
}

/// A string literal with its contents preserved. `Tok::text` stays empty
/// for `Str` tokens (the token rules never look inside literals); the
/// semantic index correlates a `StrLit` with its `Str` token by
/// `(line, col)` when it needs call-site context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based column of the opening delimiter (the `r`/`b` prefix when
    /// present).
    pub col: u32,
    /// Literal body, delimiters stripped, escapes left verbatim (the
    /// harvest passes only match key/knob-shaped text, which never
    /// contains escapes).
    pub text: String,
    /// `true` for byte strings (`b"…"`, `br"…"`) — never harvested as
    /// telemetry keys or env knobs.
    pub byte: bool,
}

/// The lexer output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens (comments and whitespace removed).
    pub tokens: Vec<Tok>,
    /// Comments, for waiver extraction.
    pub comments: Vec<Comment>,
    /// String-literal contents, in source order, for the semantic index.
    pub strings: Vec<StrLit>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
    /// `true` until a non-whitespace char is seen on the current line.
    at_line_start: bool,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
            at_line_start: true,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.at_line_start = true;
        } else {
            self.col += 1;
            if !c.is_whitespace() {
                self.at_line_start = false;
            }
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, returning code tokens and comments.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let own_line = cur.at_line_start;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        cur.bump();
                        let mut text = String::new();
                        while let Some(ch) = cur.peek() {
                            if ch == '\n' {
                                break;
                            }
                            text.push(ch);
                            cur.bump();
                        }
                        out.comments.push(Comment {
                            line,
                            own_line,
                            text,
                        });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut depth = 1u32;
                        let mut text = String::new();
                        while depth > 0 {
                            match cur.bump() {
                                Some('/') if cur.peek() == Some('*') => {
                                    cur.bump();
                                    depth += 1;
                                    text.push_str("/*");
                                }
                                Some('*') if cur.peek() == Some('/') => {
                                    cur.bump();
                                    depth -= 1;
                                    if depth > 0 {
                                        text.push_str("*/");
                                    }
                                }
                                Some(ch) => text.push(ch),
                                None => break, // unterminated; EOF ends it
                            }
                        }
                        out.comments.push(Comment {
                            line,
                            own_line,
                            text,
                        });
                    }
                    _ => out.tokens.push(punct(line, col, "/")),
                }
            }
            '"' => {
                cur.bump();
                let body = skip_string_body(&mut cur);
                out.strings.push(StrLit {
                    line,
                    col,
                    text: body,
                    byte: false,
                });
                out.tokens.push(literal(TokKind::Str, line, col));
            }
            '\'' => {
                cur.bump();
                lex_quote(&mut cur, &mut out, line, col);
            }
            'r' | 'b' => {
                // Maybe a raw string (r", r#"), byte string (b", br#"),
                // byte char (b'), raw ident (r#ident) — else an ident.
                if !try_lex_prefixed(&mut cur, &mut out, line, col) {
                    lex_ident(&mut cur, &mut out, line, col);
                }
            }
            _ if is_ident_start(c) => lex_ident(&mut cur, &mut out, line, col),
            _ if c.is_ascii_digit() => lex_number(&mut cur, &mut out, line, col),
            ':' => {
                cur.bump();
                if cur.peek() == Some(':') {
                    cur.bump();
                    out.tokens.push(punct(line, col, "::"));
                } else {
                    out.tokens.push(punct(line, col, ":"));
                }
            }
            '=' => {
                cur.bump();
                if cur.peek() == Some('=') {
                    cur.bump();
                    out.tokens.push(punct(line, col, "=="));
                } else {
                    out.tokens.push(punct(line, col, "="));
                }
            }
            '!' => {
                cur.bump();
                if cur.peek() == Some('=') {
                    cur.bump();
                    out.tokens.push(punct(line, col, "!="));
                } else {
                    out.tokens.push(punct(line, col, "!"));
                }
            }
            _ => {
                cur.bump();
                let mut s = String::new();
                s.push(c);
                out.tokens.push(punct(line, col, &s));
            }
        }
    }
    out
}

fn punct(line: u32, col: u32, text: &str) -> Tok {
    Tok {
        kind: TokKind::Punct,
        text: text.to_string(),
        line,
        col,
        is_float: false,
    }
}

fn literal(kind: TokKind, line: u32, col: u32) -> Tok {
    Tok {
        kind,
        text: String::new(),
        line,
        col,
        is_float: false,
    }
}

/// Consumes a (non-raw) string body after the opening `"`, returning the
/// body with escapes left verbatim.
fn skip_string_body(cur: &mut Cursor) -> String {
    let mut body = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                body.push('\\');
                if let Some(e) = cur.bump() {
                    body.push(e); // whatever is escaped, incl. `"` and `\`
                }
            }
            '"' => return body,
            _ => body.push(c),
        }
    }
    body
}

/// Consumes a raw-string body after `r`/`br`, starting at the `#`s or
/// the quote, returning the body. Only called when lookahead confirmed a
/// raw string opener (cursor may have consumed `#`s — defensive on
/// malformed input).
fn skip_raw_string(cur: &mut Cursor) -> String {
    let mut body = String::new();
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        return body; // raw ident handled by caller lookahead; defensive
    }
    cur.bump();
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return body;
                }
                body.push('"');
                for _ in 0..seen {
                    body.push('#');
                }
            }
            Some(c) => body.push(c),
            None => return body,
        }
    }
}

/// After a `'` has been consumed: decide char literal vs lifetime.
fn lex_quote(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume escape then to closing quote.
            cur.bump();
            cur.bump(); // the escaped char (or first of \u)
            while let Some(c) = cur.peek() {
                let done = c == '\'';
                cur.bump();
                if done {
                    break;
                }
            }
            out.tokens.push(literal(TokKind::Char, line, col));
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` / `'static` is a lifetime. Consume
            // the ident, then check for a closing quote.
            let mut ident = String::new();
            while let Some(ch) = cur.peek() {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') && ident.chars().count() == 1 {
                cur.bump();
                out.tokens.push(literal(TokKind::Char, line, col));
            } else {
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: ident,
                    line,
                    col,
                    is_float: false,
                });
            }
        }
        Some(_) => {
            // `'('`-style: any single char then closing quote.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            out.tokens.push(literal(TokKind::Char, line, col));
        }
        None => out.tokens.push(punct(line, col, "'")),
    }
}

/// Handles `r`/`b`-prefixed literals. Returns `true` when a literal was
/// lexed; `false` means the caller should lex an ordinary identifier.
fn try_lex_prefixed(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) -> bool {
    // Clone-free two-char lookahead: collect the prefix first.
    let first = cur.peek().unwrap_or('\0');
    // Snapshot what follows by materializing a small lookahead string.
    let rest: String = cur.chars.clone().skip(1).take(3).collect();
    let next = rest.chars().next();
    match (first, next) {
        ('r', Some('"')) => {
            cur.bump(); // r
            let body = skip_raw_string(cur);
            out.strings.push(StrLit {
                line,
                col,
                text: body,
                byte: false,
            });
            out.tokens.push(literal(TokKind::Str, line, col));
            true
        }
        ('r', Some('#')) => {
            // r#"..." raw string, or r#ident raw identifier.
            let after_hash = rest.chars().nth(1);
            if matches!(after_hash, Some('"') | Some('#')) {
                cur.bump(); // r
                let body = skip_raw_string(cur);
                out.strings.push(StrLit {
                    line,
                    col,
                    text: body,
                    byte: false,
                });
                out.tokens.push(literal(TokKind::Str, line, col));
                true
            } else {
                // Raw identifier: consume r# then the ident.
                cur.bump(); // r
                cur.bump(); // #
                lex_ident(cur, out, line, col);
                true
            }
        }
        ('b', Some('"')) => {
            cur.bump(); // b
            cur.bump(); // "
            let body = skip_string_body(cur);
            out.strings.push(StrLit {
                line,
                col,
                text: body,
                byte: true,
            });
            out.tokens.push(literal(TokKind::Str, line, col));
            true
        }
        ('b', Some('\'')) => {
            cur.bump(); // b
            cur.bump(); // '
            lex_quote(cur, out, line, col);
            // lex_quote pushed a Char (or lifetime, impossible for b');
            true
        }
        ('b', Some('r')) if matches!(rest.chars().nth(1), Some('"') | Some('#')) => {
            cur.bump(); // b
            cur.bump(); // r
            let body = skip_raw_string(cur);
            out.strings.push(StrLit {
                line,
                col,
                text: body,
                byte: true,
            });
            out.tokens.push(literal(TokKind::Str, line, col));
            true
        }
        _ => false,
    }
}

fn lex_ident(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
        is_float: false,
    });
}

fn lex_number(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    let mut text = String::new();
    let mut is_float = false;
    // Radix prefixes are always integers.
    let radix_prefix = {
        let rest: String = cur.chars.clone().take(2).collect();
        matches!(rest.as_str(), "0x" | "0o" | "0b" | "0X" | "0O" | "0B")
    };
    if radix_prefix {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        // Decimal point (but not `..` ranges or method calls `1.max()`).
        if cur.peek() == Some('.') {
            let after: Option<char> = cur.chars.clone().nth(1);
            if after.is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            } else if after.is_none_or(|c| !is_ident_start(c) && c != '.') {
                // Trailing-dot float like `1.`
                is_float = true;
                text.push('.');
                cur.bump();
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some('e') | Some('E')) {
            let mut look = cur.chars.clone();
            look.next();
            let mut sign_len = 0;
            let mut exp = look.next();
            if matches!(exp, Some('+') | Some('-')) {
                sign_len = 1;
                exp = look.next();
            }
            if exp.is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                text.push(cur.bump().unwrap_or('e'));
                for _ in 0..sign_len {
                    text.push(cur.bump().unwrap_or('+'));
                }
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Type suffix (`f32`, `u8`, …).
    let mut suffix = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    text.push_str(&suffix);
    out.tokens.push(Tok {
        kind: TokKind::Number,
        text,
        line,
        col,
        is_float,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_tokens() {
        let out = lex(r#"let s = "x.unwrap()"; s.len()"#);
        assert!(!idents(r#"let s = "x.unwrap()"; s.len()"#).contains(&"unwrap".to_string()));
        assert_eq!(
            out.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_quotes_and_hashes() {
        let src = r##"let s = r#"a "quoted" unwrap() inside"#; x.y()"##;
        assert!(!idents(src).contains(&"unwrap".to_string()));
        assert!(idents(src).contains(&"y".to_string()));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let src = r##"let a = b"unwrap()"; let b2 = br#"expect()"#; f()"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(ids.contains(&"f".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ real()";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"real".to_string()));
        let out = lex(src);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner unwrap()"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s: &'static str; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn float_detection() {
        let floats: Vec<(String, bool)> = lex("1.0 2 3e5 0x1f 1_000 2.5e-3 4f32 5f64 7u32 1..5")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| (t.text, t.is_float))
            .collect();
        let expect = [
            ("1.0", true),
            ("2", false),
            ("3e5", true),
            ("0x1f", false),
            ("1_000", false),
            ("2.5e-3", true),
            ("4f32", true),
            ("5f64", true),
            ("7u32", false),
            ("1", false),
            ("5", false),
        ];
        assert_eq!(floats.len(), expect.len(), "{floats:?}");
        for ((text, isf), (etext, eisf)) in floats.iter().zip(expect) {
            assert_eq!((text.as_str(), *isf), (etext, eisf));
        }
    }

    #[test]
    fn fused_puncts_and_positions() {
        let out = lex("a::b == c != d");
        let puncts: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["::", "==", "!="]);
        assert_eq!(out.tokens[0].line, 1);
        assert_eq!(out.tokens[0].col, 1);
        assert_eq!(out.tokens[1].col, 2); // `::`
    }

    #[test]
    fn comments_know_if_they_own_their_line() {
        let out = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert_eq!(out.comments.len(), 2);
        assert!(!out.comments[0].own_line);
        assert!(out.comments[1].own_line);
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#type = 1; r#fn()");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        lex("\"unterminated");
        lex("/* unterminated");
        lex("r#\"unterminated");
        lex("'");
    }

    #[test]
    fn string_contents_are_captured_with_positions() {
        let out = lex("tele.inc(\"net.frames.sent\");\nlet p = \"a.b\";");
        let lits: Vec<_> = out
            .strings
            .iter()
            .map(|s| (s.text.as_str(), s.line, s.byte))
            .collect();
        assert_eq!(lits, vec![("net.frames.sent", 1, false), ("a.b", 2, false)]);
        // Each StrLit lines up with a Str token at the same (line, col).
        let str_toks: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| (t.line, t.col))
            .collect();
        let lit_pos: Vec<_> = out.strings.iter().map(|s| (s.line, s.col)).collect();
        assert_eq!(str_toks, lit_pos);
    }

    #[test]
    fn byte_and_raw_byte_string_contents_are_flagged_byte() {
        let src = r##"let a = b"SLM_FAKE"; let b2 = br#"train.loss"#; let c = r#"net.x"#;"##;
        let out = lex(src);
        let lits: Vec<_> = out
            .strings
            .iter()
            .map(|s| (s.text.as_str(), s.byte))
            .collect();
        assert_eq!(
            lits,
            vec![("SLM_FAKE", true), ("train.loss", true), ("net.x", false)]
        );
    }

    #[test]
    fn raw_string_inner_quote_hash_runs_survive() {
        // A shorter `"#` run inside an `r##"…"##` string is body text.
        let src = "let s = r##\"a\"#b\"##;";
        let out = lex(src);
        assert_eq!(out.strings.len(), 1);
        assert_eq!(out.strings[0].text, "a\"#b");
    }

    #[test]
    fn multiline_strings_capture_key_shaped_text_verbatim() {
        // Multi-line literal containing env-knob- and metric-key-shaped
        // text: it must come back as ONE literal (never re-lexed as
        // code), so the harvest passes can see — and reject — it whole.
        let src = "let doc = \"SLM_THREADS=4\ntrain.loss goes here\";\nf();";
        let out = lex(src);
        assert_eq!(out.strings.len(), 1);
        assert!(out.strings[0].text.contains("SLM_THREADS"));
        assert!(out.strings[0].text.contains("train.loss"));
        assert!(!idents(src).contains(&"SLM_THREADS".to_string()));
        assert!(idents(src).contains(&"f".to_string()));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        let out = lex(r#"let s = "a\"b\\"; g()"#);
        assert_eq!(out.strings.len(), 1);
        assert_eq!(out.strings[0].text, r#"a\"b\\"#);
        assert!(idents(r#"let s = "a\"b\\"; g()"#).contains(&"g".to_string()));
    }
}
