//! `slm-lint` — static analyzer + offline contract checkers CLI.
//!
//! ```text
//! slm-lint [--root PATH] [--json] [--json-out PATH]
//!          [--shapes] [--miswire] [--keys] [--knobs] [--protocol]
//!          [--determinism] [--semantic] [--update-allowlist]
//! ```
//!
//! Default run: lint every workspace crate under `--root` (default `.`),
//! print findings rustc-style and exit non-zero if any survive the
//! allowlist. The semantic passes ride on the item-level index:
//! `--keys` (telemetry key-namespace contract), `--knobs` (`SLM_*`
//! env-knob table), `--protocol` (MsgType decode/handler coverage plus
//! the bounded protocol model checker and its seeded-mutation
//! self-test) and `--determinism` (kernel accumulator-order
//! heuristics); `--semantic` enables all four. `--shapes` additionally
//! validates the UE→pool→payload→BS wiring of every experiment profile
//! without allocating a tensor; `--miswire` injects a deliberately
//! wrong BS input width and *must* exit non-zero with a per-layer trace
//! (checker self-test). `--update-allowlist` rewrites
//! `crates/lint/allowlist.txt` to exactly cover the current findings
//! (initial capture / post burn-down).
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = internal/IO/usage error.

use sl_lint::{Allowlist, Finding, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    json_out: Option<PathBuf>,
    shapes: bool,
    miswire: bool,
    keys: bool,
    knobs: bool,
    protocol: bool,
    determinism: bool,
    update_allowlist: bool,
    lint: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        json_out: None,
        shapes: false,
        miswire: false,
        keys: false,
        knobs: false,
        protocol: false,
        determinism: false,
        update_allowlist: false,
        lint: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json-out requires a path".to_string())?,
                ));
            }
            "--shapes" => args.shapes = true,
            "--miswire" => {
                args.shapes = true;
                args.miswire = true;
            }
            "--shapes-only" => {
                args.shapes = true;
                args.lint = false;
            }
            "--keys" => args.keys = true,
            "--knobs" => args.knobs = true,
            "--protocol" => args.protocol = true,
            "--determinism" => args.determinism = true,
            "--semantic" => {
                args.keys = true;
                args.knobs = true;
                args.protocol = true;
                args.determinism = true;
            }
            "--update-allowlist" => args.update_allowlist = true,
            "--help" | "-h" => {
                println!(
                    "slm-lint: workspace static analyzer + offline contract checkers\n\n\
                     USAGE: slm-lint [--root PATH] [--json] [--json-out PATH]\n\
                            [--shapes] [--shapes-only] [--miswire]\n\
                            [--keys] [--knobs] [--protocol] [--determinism] [--semantic]\n\
                            [--update-allowlist]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("slm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let config = LintConfig::default();

    if args.update_allowlist {
        return update_allowlist(&args, &config);
    }

    let mut failed = false;
    let semantic_requested = args.keys || args.knobs || args.protocol || args.determinism;

    if args.lint || semantic_requested {
        let mut report = if args.lint {
            match sl_lint::run(&args.root, &config) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("slm-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            empty_report()
        };

        if semantic_requested {
            match run_semantic(&args, &config, &mut report) {
                Ok(()) => {}
                Err(e) => {
                    eprintln!("slm-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }

        if args.json {
            println!("{}", report.to_json());
        } else {
            for f in &report.findings {
                println!("{f}");
            }
            let passes = report
                .passes
                .iter()
                .map(|(p, n)| format!("{p}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "slm-lint: {} file(s) scanned, {} finding(s), {} allowlisted, {} waived \
                 (allowlist size {}){}",
                report.files_scanned,
                report.findings.len(),
                report.allowlisted.len(),
                report.waived.len(),
                report.allowlist_len,
                if passes.is_empty() {
                    String::new()
                } else {
                    format!("; passes: {passes}")
                },
            );
        }
        if let Some(path) = &args.json_out {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("slm-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        failed |= !report.clean();
    }

    if args.shapes {
        match shapes::run(args.miswire) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn update_allowlist(args: &Args, config: &LintConfig) -> ExitCode {
    let collected = match sl_lint::collect(&args.root, config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("slm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let path = args.root.join("crates/lint/allowlist.txt");
    let rendered = Allowlist::render(&collected.findings);
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("slm-lint: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "slm-lint: wrote {} with {} entr(ies) covering the current findings",
        path.display(),
        collected.findings.len()
    );
    ExitCode::SUCCESS
}

/// A report shell for `--shapes-only`-style runs that still want the
/// semantic passes merged in.
fn empty_report() -> sl_lint::LintReport {
    sl_lint::LintReport {
        findings: Vec::new(),
        allowlisted: Vec::new(),
        waived: Vec::new(),
        rule_counts: std::collections::BTreeMap::new(),
        allowlist_len: 0,
        files_scanned: 0,
        passes: std::collections::BTreeMap::new(),
    }
}

/// Runs the requested semantic passes over one shared item-level index
/// and merges their findings (and per-pass counts) into `report`.
/// `Err` = internal failure (exit 2); findings themselves flow through
/// the report (exit 1).
fn run_semantic(
    args: &Args,
    config: &LintConfig,
    report: &mut sl_lint::LintReport,
) -> Result<(), String> {
    let files = sl_lint::build_index(&args.root, config)
        .map_err(|e| format!("cannot index workspace: {e}"))?;
    let mut merge = |pass: &str, findings: Vec<Finding>| {
        report.passes.insert(pass.to_string(), findings.len());
        for f in &findings {
            *report.rule_counts.entry(f.rule.clone()).or_insert(0) += 1;
        }
        report.findings.extend(findings);
    };

    if args.keys {
        merge(
            "keys",
            sl_lint::keys::check_keys(&files, &semantic::key_specs()?),
        );
    }
    if args.knobs {
        let mut docs = Vec::new();
        for name in ["README.md", "DESIGN.md"] {
            let text = std::fs::read_to_string(args.root.join(name)).unwrap_or_default();
            docs.push((name.to_string(), text));
        }
        merge(
            "knobs",
            sl_lint::knobs::check_knobs(&files, &semantic::knob_specs()?, &docs),
        );
    }
    if args.protocol {
        let spec = sl_lint::protocol::ProtocolSpec::workspace_default();
        let mut findings = sl_lint::protocol::check_protocol(&files, &spec);
        findings.extend(model_findings());
        merge("protocol", findings);
    }
    if args.determinism {
        merge(
            "determinism",
            sl_lint::index::check_determinism(&files, &config.determinism_kernel_crates),
        );
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(())
}

/// The bounded protocol model check plus its non-vacuity self-test: the
/// faithful model must prove every invariant, and the seeded
/// recompute-on-nack mutation must be caught.
fn model_findings() -> Vec<Finding> {
    use sl_lint::model::{check, ModelConfig, Mutation};
    let model_file = "crates/lint/src/model.rs".to_string();
    let mut out = Vec::new();

    let faithful = check(&ModelConfig::default());
    for v in &faithful.violations {
        out.push(Finding {
            rule: "protocol-model".to_string(),
            file: model_file.clone(),
            line: 0,
            col: 0,
            message: format!(
                "invariant '{}' violated: {} (trace: {})",
                v.invariant,
                v.message,
                v.trace.join(" -> ")
            ),
        });
    }
    if !faithful.done_reachable {
        out.push(Finding {
            rule: "protocol-model".to_string(),
            file: model_file.clone(),
            line: 0,
            col: 0,
            message: "clean shutdown (Done) is unreachable in the faithful model".to_string(),
        });
    }

    let mutant = check(&ModelConfig {
        mutation: Mutation::RecomputeOnNack,
        ..ModelConfig::default()
    });
    if mutant.violations.is_empty() {
        out.push(Finding {
            rule: "protocol-model-selftest".to_string(),
            file: model_file.clone(),
            line: 0,
            col: 0,
            message: "seeded mutation (server recomputes instead of resending its cached reply) \
                      was not caught — the no-double-apply invariant is vacuous"
                .to_string(),
        });
    }
    eprintln!(
        "slm-lint --protocol: model checked {} state(s) / {} transition(s); \
         mutation self-test {}",
        faithful.states,
        faithful.transitions,
        if mutant.violations.is_empty() {
            "FAILED"
        } else {
            "caught the seeded bug"
        }
    );
    out
}

/// Declared-contract providers for the `--keys` / `--knobs` passes: the
/// tables live in `sl_telemetry::registry` (pulled in by the `semantic`
/// feature) so the contract ships with the crate it governs.
#[cfg(feature = "semantic")]
mod semantic {
    use sl_lint::keys::KeySpec;
    use sl_lint::knobs::KnobSpec;

    pub fn key_specs() -> Result<Vec<KeySpec>, String> {
        Ok(sl_telemetry::registry::KEYS
            .iter()
            .map(|k| KeySpec::new(k.pattern, k.readers))
            .collect())
    }

    pub fn knob_specs() -> Result<Vec<KnobSpec>, String> {
        Ok(sl_telemetry::registry::KNOBS
            .iter()
            .map(|k| KnobSpec::new(k.name, k.default, k.parse, k.doc))
            .collect())
    }
}

#[cfg(not(feature = "semantic"))]
mod semantic {
    use sl_lint::keys::KeySpec;
    use sl_lint::knobs::KnobSpec;

    pub fn key_specs() -> Result<Vec<KeySpec>, String> {
        Err("built without the `semantic` feature; --keys unavailable".into())
    }

    pub fn knob_specs() -> Result<Vec<KnobSpec>, String> {
        Err("built without the `semantic` feature; --knobs unavailable".into())
    }
}

/// The offline shape-contract pass: validate every experiment profile's
/// wiring (and, with `--miswire`, prove a bad wiring is rejected with a
/// per-layer trace).
#[cfg(feature = "shapes")]
mod shapes {
    use sl_core::{ExperimentConfig, PoolingDim, Scheme, WiringSpec};
    use sl_scene::PAPER_SEQ_LEN;

    /// Paper camera geometry (`CameraConfig::paper()`): 40×40 frames.
    const PAPER_IMG: usize = 40;
    /// The quick profile trains on 16×16 test scenes.
    const QUICK_IMG: usize = 16;

    pub fn run(miswire: bool) -> Result<(), String> {
        if miswire {
            return inject_miswire();
        }
        let mut checked = 0usize;
        for scheme in Scheme::ALL {
            for pooling in PoolingDim::TABLE1 {
                for (profile, config) in [
                    ("paper", ExperimentConfig::paper(scheme, pooling)),
                    (
                        "paper-literal-link",
                        ExperimentConfig::paper_literal_link(scheme, pooling),
                    ),
                ] {
                    check_one(profile, &config, PAPER_IMG, PAPER_SEQ_LEN)?;
                    checked += 1;
                }
                // The quick profile runs on 16×16 scenes, so only pooling
                // windows that tile 16×16 apply (RAW and MEDIUM from
                // Table 1).
                if QUICK_IMG.is_multiple_of(pooling.h) && QUICK_IMG.is_multiple_of(pooling.w) {
                    let config = ExperimentConfig::quick(scheme, pooling);
                    check_one("quick", &config, QUICK_IMG, PAPER_SEQ_LEN)?;
                    checked += 1;
                }
            }
        }
        println!("slm-lint --shapes: {checked} profile wiring(s) verified");
        Ok(())
    }

    fn check_one(
        profile: &str,
        config: &ExperimentConfig,
        img: usize,
        seq_len: usize,
    ) -> Result<(), String> {
        let spec = WiringSpec::from_config(config, img, img, seq_len);
        match spec.check() {
            Ok(report) => {
                println!(
                    "  ok  {profile:<18} {:?} {}x{} pool {}x{}  payload {} px, F={}",
                    config.scheme,
                    img,
                    img,
                    config.pooling.h,
                    config.pooling.w,
                    report.pooled_pixels,
                    report.feature_dim,
                );
                Ok(())
            }
            Err(e) => Err(format!(
                "slm-lint --shapes: profile `{profile}` ({:?}, pool {}x{}, {img}x{img}) is miswired:\n{e}",
                config.scheme, config.pooling.h, config.pooling.w
            )),
        }
    }

    /// Deliberately wrong BS input width: the checker must refuse it and
    /// show where the shapes stop lining up.
    fn inject_miswire() -> Result<(), String> {
        let config = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        let mut spec = WiringSpec::from_config(&config, PAPER_IMG, PAPER_IMG, PAPER_SEQ_LEN);
        // One-pixel ImgRf has F = 2; wire the BS for 17 features instead.
        spec.bs_feature_dim = Some(17);
        match spec.check() {
            Err(e) => Err(format!(
                "slm-lint --miswire: checker correctly rejected the wiring:\n{e}"
            )),
            Ok(_) => {
                // The self-test *failing to fail* is the broken outcome.
                Err("slm-lint --miswire: BUG: deliberately miswired config was accepted".into())
            }
        }
    }
}

#[cfg(not(feature = "shapes"))]
mod shapes {
    pub fn run(_miswire: bool) -> Result<(), String> {
        Err("slm-lint: built without the `shapes` feature; --shapes unavailable".into())
    }
}
