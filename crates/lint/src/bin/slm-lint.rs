//! `slm-lint` — static analyzer + offline shape-contract checker CLI.
//!
//! ```text
//! slm-lint [--root PATH] [--json] [--json-out PATH]
//!          [--shapes] [--miswire] [--update-allowlist]
//! ```
//!
//! Default run: lint every workspace crate under `--root` (default `.`),
//! print findings rustc-style and exit non-zero if any survive the
//! allowlist. `--shapes` additionally validates the UE→pool→payload→BS
//! wiring of every experiment profile without allocating a tensor;
//! `--miswire` injects a deliberately wrong BS input width and *must*
//! exit non-zero with a per-layer trace (checker self-test).
//! `--update-allowlist` rewrites `crates/lint/allowlist.txt` to exactly
//! cover the current findings (initial capture / post burn-down).

use sl_lint::{Allowlist, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    json_out: Option<PathBuf>,
    shapes: bool,
    miswire: bool,
    update_allowlist: bool,
    lint: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        json_out: None,
        shapes: false,
        miswire: false,
        update_allowlist: false,
        lint: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json-out requires a path".to_string())?,
                ));
            }
            "--shapes" => args.shapes = true,
            "--miswire" => {
                args.shapes = true;
                args.miswire = true;
            }
            "--shapes-only" => {
                args.shapes = true;
                args.lint = false;
            }
            "--update-allowlist" => args.update_allowlist = true,
            "--help" | "-h" => {
                println!(
                    "slm-lint: workspace static analyzer + shape-contract checker\n\n\
                     USAGE: slm-lint [--root PATH] [--json] [--json-out PATH]\n\
                            [--shapes] [--shapes-only] [--miswire] [--update-allowlist]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("slm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let config = LintConfig::default();

    if args.update_allowlist {
        return update_allowlist(&args, &config);
    }

    let mut failed = false;

    if args.lint {
        match sl_lint::run(&args.root, &config) {
            Ok(report) => {
                if args.json {
                    println!("{}", report.to_json());
                } else {
                    for f in &report.findings {
                        println!("{f}");
                    }
                    println!(
                        "slm-lint: {} file(s) scanned, {} finding(s), {} allowlisted, {} waived \
                         (allowlist size {})",
                        report.files_scanned,
                        report.findings.len(),
                        report.allowlisted.len(),
                        report.waived.len(),
                        report.allowlist_len,
                    );
                }
                if let Some(path) = &args.json_out {
                    if let Some(dir) = path.parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    if let Err(e) = std::fs::write(path, report.to_json()) {
                        eprintln!("slm-lint: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                failed |= !report.clean();
            }
            Err(e) => {
                eprintln!("slm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if args.shapes {
        match shapes::run(args.miswire) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn update_allowlist(args: &Args, config: &LintConfig) -> ExitCode {
    let collected = match sl_lint::collect(&args.root, config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("slm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let path = args.root.join("crates/lint/allowlist.txt");
    let rendered = Allowlist::render(&collected.findings);
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("slm-lint: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "slm-lint: wrote {} with {} entr(ies) covering the current findings",
        path.display(),
        collected.findings.len()
    );
    ExitCode::SUCCESS
}

/// The offline shape-contract pass: validate every experiment profile's
/// wiring (and, with `--miswire`, prove a bad wiring is rejected with a
/// per-layer trace).
#[cfg(feature = "shapes")]
mod shapes {
    use sl_core::{ExperimentConfig, PoolingDim, Scheme, WiringSpec};
    use sl_scene::PAPER_SEQ_LEN;

    /// Paper camera geometry (`CameraConfig::paper()`): 40×40 frames.
    const PAPER_IMG: usize = 40;
    /// The quick profile trains on 16×16 test scenes.
    const QUICK_IMG: usize = 16;

    pub fn run(miswire: bool) -> Result<(), String> {
        if miswire {
            return inject_miswire();
        }
        let mut checked = 0usize;
        for scheme in Scheme::ALL {
            for pooling in PoolingDim::TABLE1 {
                for (profile, config) in [
                    ("paper", ExperimentConfig::paper(scheme, pooling)),
                    (
                        "paper-literal-link",
                        ExperimentConfig::paper_literal_link(scheme, pooling),
                    ),
                ] {
                    check_one(profile, &config, PAPER_IMG, PAPER_SEQ_LEN)?;
                    checked += 1;
                }
                // The quick profile runs on 16×16 scenes, so only pooling
                // windows that tile 16×16 apply (RAW and MEDIUM from
                // Table 1).
                if QUICK_IMG.is_multiple_of(pooling.h) && QUICK_IMG.is_multiple_of(pooling.w) {
                    let config = ExperimentConfig::quick(scheme, pooling);
                    check_one("quick", &config, QUICK_IMG, PAPER_SEQ_LEN)?;
                    checked += 1;
                }
            }
        }
        println!("slm-lint --shapes: {checked} profile wiring(s) verified");
        Ok(())
    }

    fn check_one(
        profile: &str,
        config: &ExperimentConfig,
        img: usize,
        seq_len: usize,
    ) -> Result<(), String> {
        let spec = WiringSpec::from_config(config, img, img, seq_len);
        match spec.check() {
            Ok(report) => {
                println!(
                    "  ok  {profile:<18} {:?} {}x{} pool {}x{}  payload {} px, F={}",
                    config.scheme,
                    img,
                    img,
                    config.pooling.h,
                    config.pooling.w,
                    report.pooled_pixels,
                    report.feature_dim,
                );
                Ok(())
            }
            Err(e) => Err(format!(
                "slm-lint --shapes: profile `{profile}` ({:?}, pool {}x{}, {img}x{img}) is miswired:\n{e}",
                config.scheme, config.pooling.h, config.pooling.w
            )),
        }
    }

    /// Deliberately wrong BS input width: the checker must refuse it and
    /// show where the shapes stop lining up.
    fn inject_miswire() -> Result<(), String> {
        let config = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        let mut spec = WiringSpec::from_config(&config, PAPER_IMG, PAPER_IMG, PAPER_SEQ_LEN);
        // One-pixel ImgRf has F = 2; wire the BS for 17 features instead.
        spec.bs_feature_dim = Some(17);
        match spec.check() {
            Err(e) => Err(format!(
                "slm-lint --miswire: checker correctly rejected the wiring:\n{e}"
            )),
            Ok(_) => {
                // The self-test *failing to fail* is the broken outcome.
                Err("slm-lint --miswire: BUG: deliberately miswired config was accepted".into())
            }
        }
    }
}

#[cfg(not(feature = "shapes"))]
mod shapes {
    pub fn run(_miswire: bool) -> Result<(), String> {
        Err("slm-lint: built without the `shapes` feature; --shapes unavailable".into())
    }
}
