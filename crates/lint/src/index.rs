//! Item-level semantic index built on the token lexer.
//!
//! [`FileIndex`] records, per source file, the facts the semantic passes
//! need with file:line provenance: function items (with the
//! accumulator/loop shape facts the determinism heuristics consume),
//! enum declarations with their variants, `A::B` path references, and
//! every string literal together with the call site it is an argument
//! of (so `tele.inc("net.retries")`, `env::var("SLM_THREADS")` and
//! `tele.observe(&format!("{name}.host_s"), v)` are distinguishable
//! from documentation strings that merely *look* like keys).
//!
//! The index deliberately stays token-level: it never resolves types or
//! imports. Every consumer pass is written so that the failure mode of
//! that imprecision is a *missed* harvest (an unlisted key), which the
//! registry cross-checks then surface as drift — never a false claim
//! about code that does not exist.

use crate::lexer::{self, Tok, TokKind};
use crate::rules::{is_ident, is_punct, matching_bracket, test_region_mask};
use crate::workspace::TargetKind;

/// The call expression a string literal is an argument of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Identifier immediately before the opening `(`.
    pub callee: String,
    /// Identifier before a `::` preceding the callee (`env` in
    /// `env::var(..)`), when present.
    pub qualifier: Option<String>,
    /// `true` when a `!` sits between the callee and the `(`.
    pub is_macro: bool,
    /// `true` when a `.` precedes the callee (method call).
    pub method: bool,
    /// `true` when no top-level `,` separates the `(` from the literal
    /// (the literal is part of the first argument).
    pub first_arg: bool,
}

/// One string literal with provenance and call context.
#[derive(Debug, Clone)]
pub struct StrRef {
    /// Literal body (delimiters stripped).
    pub text: String,
    /// 1-based line / column of the opening delimiter.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte string (`b"…"` / `br"…"`).
    pub byte: bool,
    /// Inside a `#[cfg(test)]` item or `mod tests` block.
    pub in_test: bool,
    /// Innermost call the literal is an argument of.
    pub call: Option<CallSite>,
    /// The call enclosing that one (for `method(&format!("…"), ..)`).
    pub outer_call: Option<CallSite>,
}

/// A `for` loop header inside a function.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// First identifier after `for` (the loop binder, or its first
    /// component for tuple patterns).
    pub binder: String,
    /// `true` when the iterator expression calls `.rev()`.
    pub rev: bool,
    /// 1-based line of the `for` keyword.
    pub line: u32,
    /// 1-based column of the `for` keyword.
    pub col: u32,
}

/// One `fn` item with the shape facts the determinism pass consumes.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a test region.
    pub in_test: bool,
    /// `let mut <ident>` bindings whose name starts with `acc`/`sum`
    /// (accumulator-shaped), with the binding line/col.
    pub accumulators: Vec<(String, u32, u32)>,
    /// `a + b` identifier pairs seen in the body (both operands plain
    /// identifiers), with the `+` position.
    pub add_pairs: Vec<(String, String, u32, u32)>,
    /// `for` loop headers in the body.
    pub loops: Vec<ForLoop>,
    /// Calls whose callee name looks like a fused-multiply or
    /// lane-reduction SIMD intrinsic (see [`FUSED_PATTERNS`] /
    /// [`REDUCE_PATTERNS`]), with the call position.
    pub intrinsics: Vec<(String, u32, u32)>,
}

/// Callee-name fragments of fused multiply-add/-sub intrinsics
/// (`_mm*_fmadd_*`, `vfmaq_*`, …): fusing rounds once where the scalar
/// reference rounds twice, so these break bitwise backend equality.
pub const FUSED_PATTERNS: [&str; 4] = ["fmadd", "fmsub", "vfma", "vfms"];

/// Callee-name fragments of horizontal/lane-reduction intrinsics
/// (`_mm*_hadd_*`, `vaddvq_*`, `_mm512_reduce_add_*`, …): cross-lane
/// sums reassociate the reduction, breaking ascending-`k` order.
pub const REDUCE_PATTERNS: [&str; 3] = ["hadd", "addv", "reduce_add"];

/// An `enum` declaration with its variants.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with their lines.
    pub variants: Vec<(String, u32)>,
}

/// One `Head::Tail` path reference.
#[derive(Debug, Clone)]
pub struct PathRef {
    /// Segment before the `::`.
    pub head: String,
    /// Segment after the `::`.
    pub tail: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the head (for span containment tests).
    pub tok: usize,
    /// Inside a test region.
    pub in_test: bool,
}

/// A `const` item whose initializer is an array/slice, with the
/// `A::B` paths the initializer references (the protocol pass checks
/// `MsgType::ALL` completeness through this).
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Const name.
    pub name: String,
    /// 1-based line of the `const` keyword.
    pub line: u32,
    /// `Head::Tail` references inside the initializer brackets.
    pub refs: Vec<(String, String)>,
}

/// The semantic index of one source file.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Owning crate name.
    pub crate_name: String,
    /// Target classification of the file.
    pub target: TargetKind,
    /// All string literals with call context.
    pub strings: Vec<StrRef>,
    /// All `fn` items.
    pub fns: Vec<FnItem>,
    /// All `enum` items.
    pub enums: Vec<EnumItem>,
    /// All `A::B` path references.
    pub path_refs: Vec<PathRef>,
    /// Array-initialized `const` items.
    pub consts: Vec<ConstItem>,
}

/// Builds the [`FileIndex`] for one file's source text.
pub fn index_file(src: &str, path: &str, crate_name: &str, target: TargetKind) -> FileIndex {
    let out = lexer::lex(src);
    let toks = &out.tokens;
    let in_test = test_region_mask(toks);

    FileIndex {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        target,
        strings: index_strings(toks, &out.strings, &in_test),
        fns: index_fns(toks, &in_test),
        enums: index_enums(toks),
        path_refs: index_path_refs(toks, &in_test),
        consts: index_consts(toks),
    }
}

/// A paren frame on the call-nesting stack.
struct Frame {
    /// Token index of the opening `(`.
    open: usize,
    /// A top-level `,` has been seen inside this frame.
    comma_seen: bool,
}

fn index_strings(toks: &[Tok], lits: &[lexer::StrLit], in_test: &[bool]) -> Vec<StrRef> {
    // Str tokens and StrLits are pushed pairwise by the lexer, so the
    // n-th Str token corresponds to the n-th literal.
    let mut out = Vec::new();
    let mut lit_iter = lits.iter();
    let mut parens: Vec<Frame> = Vec::new();
    // Square/curly brackets nested inside the innermost paren also
    // shield commas (`f([a, b])` is one argument); track a shield depth
    // per paren frame by counting on the frame itself.
    let mut shield: Vec<u32> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    parens.push(Frame {
                        open: i,
                        comma_seen: false,
                    });
                    shield.push(0);
                }
                ")" => {
                    parens.pop();
                    shield.pop();
                }
                "[" | "{" => {
                    if let Some(s) = shield.last_mut() {
                        *s += 1;
                    }
                }
                "]" | "}" => {
                    if let Some(s) = shield.last_mut() {
                        *s = s.saturating_sub(1);
                    }
                }
                "," if shield.last().copied() == Some(0) => {
                    if let Some(f) = parens.last_mut() {
                        f.comma_seen = true;
                    }
                }
                _ => {}
            },
            TokKind::Str => {
                let lit = lit_iter.next();
                let call = parens
                    .last()
                    .map(|f| call_site(toks, f.open, !f.comma_seen));
                let outer_call = parens.len().checked_sub(2).map(|k| {
                    let f = &parens[k];
                    call_site(toks, f.open, !f.comma_seen)
                });
                let (text, byte) = match lit {
                    Some(l) => (l.text.clone(), l.byte),
                    None => (String::new(), false),
                };
                out.push(StrRef {
                    text,
                    byte,
                    line: t.line,
                    col: t.col,
                    in_test: in_test.get(i).copied().unwrap_or(false),
                    call: call.flatten(),
                    outer_call: outer_call.flatten(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Extracts the call expression owning the paren at `open`, if the
/// token before it names one.
fn call_site(toks: &[Tok], open: usize, first_arg: bool) -> Option<CallSite> {
    let mut j = open.checked_sub(1)?;
    let is_macro = is_punct(toks, j, "!");
    if is_macro {
        j = j.checked_sub(1)?;
    }
    let callee = toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
    let method = j >= 1 && is_punct(toks, j - 1, ".");
    // Qualifier: the path segment (`env::var`) or method receiver
    // (`histograms.get`) immediately before the callee.
    let qualifier = if j >= 2
        && (is_punct(toks, j - 1, "::") || is_punct(toks, j - 1, "."))
        && toks[j - 2].kind == TokKind::Ident
    {
        Some(toks[j - 2].text.clone())
    } else {
        None
    };
    Some(CallSite {
        callee: callee.text.clone(),
        qualifier,
        is_macro,
        method,
        first_arg,
    })
}

fn index_fns(toks: &[Tok], in_test: &[bool]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(toks, i, "fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Body: first `{` before a terminating `;` (trait method
            // declarations have none). Bracket groups are skipped whole
            // so array types like `[f32; 4]` don't read as terminators.
            let mut j = i + 2;
            let mut body: Option<(usize, usize)> = None;
            while j < toks.len() {
                if is_punct(toks, j, "[") {
                    j = matching_bracket(toks, j, "[", "]").map_or(toks.len(), |c| c + 1);
                    continue;
                }
                if is_punct(toks, j, ";") {
                    break;
                }
                if is_punct(toks, j, "{") {
                    let close = matching_bracket(toks, j, "{", "}").unwrap_or(toks.len() - 1);
                    body = Some((j, close));
                    break;
                }
                j += 1;
            }
            let Some((open, close)) = body else {
                i += 2;
                continue;
            };
            out.push(FnItem {
                name,
                line,
                in_test: in_test.get(i).copied().unwrap_or(false),
                accumulators: scan_accumulators(toks, open, close),
                add_pairs: scan_add_pairs(toks, open, close),
                loops: scan_loops(toks, open, close),
                intrinsics: scan_intrinsics(toks, open, close),
            });
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// `let mut <ident>` bindings named like accumulators.
fn scan_accumulators(toks: &[Tok], open: usize, close: usize) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    for j in open..close {
        if is_ident(toks, j, "let") && is_ident(toks, j + 1, "mut") {
            if let Some(t) = toks.get(j + 2) {
                if t.kind == TokKind::Ident
                    && (t.text.starts_with("acc") || t.text.starts_with("sum"))
                {
                    out.push((t.text.clone(), t.line, t.col));
                }
            }
        }
    }
    out
}

/// `a + b` with both operands plain identifiers (not `+=`, not paths).
fn scan_add_pairs(toks: &[Tok], open: usize, close: usize) -> Vec<(String, String, u32, u32)> {
    let mut out = Vec::new();
    for j in open + 1..close {
        if !is_punct(toks, j, "+") {
            continue;
        }
        let (Some(a), Some(b)) = (toks.get(j - 1), toks.get(j + 1)) else {
            continue;
        };
        if a.kind != TokKind::Ident || b.kind != TokKind::Ident {
            continue;
        }
        // `a += b` lexes as `+` `=`; skip compound assignment.
        if is_punct(toks, j + 1, "=") {
            continue;
        }
        // Skip path segments (`A::b + x` is fine, but `a + B::c` has an
        // ident-adjacent `::` that changes the operand).
        if j >= 2 && is_punct(toks, j - 2, "::") {
            continue;
        }
        if is_punct(toks, j + 2, "::") {
            continue;
        }
        out.push((a.text.clone(), b.text.clone(), toks[j].line, toks[j].col));
    }
    out
}

/// `for <binder> in <iter-expr> {` headers, noting `.rev()` calls.
fn scan_loops(toks: &[Tok], open: usize, close: usize) -> Vec<ForLoop> {
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        if !is_ident(toks, j, "for") {
            j += 1;
            continue;
        }
        let line = toks[j].line;
        let col = toks[j].col;
        // Binder: first ident after `for` (handles `(i, x)` patterns).
        let mut k = j + 1;
        let mut binder = String::new();
        while k < close && k < j + 8 {
            if toks[k].kind == TokKind::Ident {
                if toks[k].text == "in" {
                    break;
                }
                if binder.is_empty() {
                    binder = toks[k].text.clone();
                }
            }
            k += 1;
        }
        // Header: up to the body `{` at bracket depth 0.
        let mut depth = 0i32;
        let mut rev = false;
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident && t.text == "rev" && is_punct(toks, k - 1, ".") {
                rev = true;
            }
            k += 1;
        }
        if !binder.is_empty() {
            out.push(ForLoop {
                binder,
                rev,
                line,
                col,
            });
        }
        j = k + 1;
    }
    out
}

/// Calls (ident directly followed by `(`, excluding `fn` definitions)
/// whose callee name contains a fused-multiply or lane-reduction
/// intrinsic fragment.
fn scan_intrinsics(toks: &[Tok], open: usize, close: usize) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    for j in open..close {
        let t = &toks[j];
        if t.kind != TokKind::Ident || !is_punct(toks, j + 1, "(") {
            continue;
        }
        if j >= 1 && is_ident(toks, j - 1, "fn") {
            continue;
        }
        let name = t.text.as_str();
        if FUSED_PATTERNS
            .iter()
            .chain(REDUCE_PATTERNS.iter())
            .any(|p| name.contains(p))
        {
            out.push((t.text.clone(), t.line, t.col));
        }
    }
    out
}

fn index_enums(toks: &[Tok]) -> Vec<EnumItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !is_ident(toks, i, "enum") || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Find the body `{` (skipping generics).
        let mut j = i + 2;
        while j < toks.len() && !is_punct(toks, j, "{") {
            if is_punct(toks, j, ";") {
                break;
            }
            j += 1;
        }
        if !is_punct(toks, j, "{") {
            i += 2;
            continue;
        }
        let close = matching_bracket(toks, j, "{", "}").unwrap_or(toks.len() - 1);
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
            }
            if depth == 0 && t.kind == TokKind::Ident {
                // A variant name follows the open brace, a comma, or the
                // `]` closing an attribute.
                let prev = &toks[k - 1];
                let starts =
                    prev.kind == TokKind::Punct && matches!(prev.text.as_str(), "{" | "," | "]");
                if starts {
                    variants.push((t.text.clone(), t.line));
                }
            }
            k += 1;
        }
        out.push(EnumItem {
            name,
            line,
            variants,
        });
        i = close + 1;
    }
    out
}

/// `const NAME: [T; N] = [ … ];` — array-initialized consts with the
/// `A::B` paths referenced in the value brackets.
fn index_consts(toks: &[Tok]) -> Vec<ConstItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !is_ident(toks, i, "const") || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Find `=` before the terminating `;`, then an array `[`. The
        // type annotation may itself be a bracket group with a `;`
        // inside (`[MsgType; 10]`), so bracket groups are skipped
        // whole.
        let mut j = i + 2;
        let mut eq = None;
        while j < toks.len() && !is_punct(toks, j, ";") {
            if is_punct(toks, j, "=") {
                eq = Some(j);
                break;
            }
            if is_punct(toks, j, "[") {
                j = matching_bracket(toks, j, "[", "]").map_or(toks.len(), |c| c + 1);
                continue;
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i += 2;
            continue;
        };
        if !is_punct(toks, eq + 1, "[") {
            i = eq + 1;
            continue;
        }
        let close = matching_bracket(toks, eq + 1, "[", "]").unwrap_or(toks.len() - 1);
        let mut refs = Vec::new();
        for k in eq + 2..close {
            if toks[k].kind == TokKind::Ident
                && is_punct(toks, k + 1, "::")
                && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                refs.push((toks[k].text.clone(), toks[k + 2].text.clone()));
            }
        }
        out.push(ConstItem { name, line, refs });
        i = close + 1;
    }
    out
}

fn index_path_refs(toks: &[Tok], in_test: &[bool]) -> Vec<PathRef> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].kind == TokKind::Ident
            && is_punct(toks, i + 1, "::")
            && toks[i + 2].kind == TokKind::Ident
        {
            out.push(PathRef {
                head: toks[i].text.clone(),
                tail: toks[i + 2].text.clone(),
                line: toks[i].line,
                tok: i,
                in_test: in_test.get(i).copied().unwrap_or(false),
            });
        }
    }
    out
}

/// `--determinism`: token-level heuristics guarding the PR 4 bitwise
/// contract (one accumulator per output element, ascending-k loops) in
/// the configured kernel crates:
///
/// - `det-split-acc` — a function declares two distinct
///   accumulator-named `let mut` bindings (`acc*`/`sum*`) and combines
///   them with `a + b`: the split-accumulator reduction shape whose
///   result depends on the partition (and therefore the thread count).
/// - `det-rev-k` — a `for` loop whose binder is `k`-named iterates
///   `.rev()`: non-ascending reduction order breaks bitwise equality
///   with the serial kernels.
/// - `det-fused-madd` — a call to a fused multiply-add/-sub intrinsic
///   ([`FUSED_PATTERNS`]): FMA rounds the product and sum once, where
///   the scalar reference rounds twice, so fused kernels cannot be
///   bitwise-equal to the scalar backend.
/// - `det-lane-reduce` — a call to a horizontal/lane-reduction
///   intrinsic ([`REDUCE_PATTERNS`]): cross-lane adds reassociate the
///   sum; SIMD lanes must map to *distinct output elements* instead.
pub fn check_determinism(
    files: &[FileIndex],
    kernel_crates: &std::collections::BTreeSet<String>,
) -> Vec<crate::Finding> {
    let mut out = Vec::new();
    for f in files {
        if !kernel_crates.contains(&f.crate_name) || f.target != TargetKind::Lib {
            continue;
        }
        for item in &f.fns {
            if item.in_test {
                continue;
            }
            let acc_names: Vec<&str> = item
                .accumulators
                .iter()
                .map(|(n, _, _)| n.as_str())
                .collect();
            if acc_names.len() >= 2 {
                for (a, b, line, col) in &item.add_pairs {
                    if a != b && acc_names.contains(&a.as_str()) && acc_names.contains(&b.as_str())
                    {
                        out.push(crate::Finding {
                            rule: "det-split-acc".to_string(),
                            file: f.path.clone(),
                            line: *line,
                            col: *col,
                            message: format!(
                                "fn {} combines split accumulators '{a} + {b}': one accumulator per output element keeps kernels bitwise-stable across thread counts",
                                item.name
                            ),
                        });
                    }
                }
            }
            for (name, line, col) in &item.intrinsics {
                let fused = FUSED_PATTERNS.iter().any(|p| name.contains(p));
                let (rule, why) = if fused {
                    (
                        "det-fused-madd",
                        "a fused multiply-add rounds once where the scalar \
                         reference rounds twice",
                    )
                } else {
                    (
                        "det-lane-reduce",
                        "a horizontal lane reduction reassociates the sum; \
                         lanes must map to distinct output elements",
                    )
                };
                out.push(crate::Finding {
                    rule: rule.to_string(),
                    file: f.path.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "fn {} calls `{name}`: {why}, breaking bitwise equality \
                         across backends",
                        item.name
                    ),
                });
            }
            for lp in &item.loops {
                if lp.rev && lp.binder.starts_with('k') {
                    out.push(crate::Finding {
                        rule: "det-rev-k".to_string(),
                        file: f.path.clone(),
                        line: lp.line,
                        col: lp.col,
                        message: format!(
                            "fn {} iterates reduction index '{}' in reverse: kernels must accumulate in ascending k order",
                            item.name, lp.binder
                        ),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(src: &str) -> FileIndex {
        index_file(src, "x.rs", "test-crate", TargetKind::Lib)
    }

    #[test]
    fn publish_call_context_is_extracted() {
        let f = idx("fn f(tele: &mut T) { tele.inc(\"net.retries\"); }");
        let s = &f.strings[0];
        assert_eq!(s.text, "net.retries");
        let c = s.call.as_ref().unwrap();
        assert_eq!(c.callee, "inc");
        assert!(c.method);
        assert!(c.first_arg);
        assert!(!c.is_macro);
    }

    #[test]
    fn format_macro_nesting_reaches_the_outer_call() {
        let f = idx("fn f() { tele.observe(&format!(\"{name}.host_s\"), v); }");
        let s = &f.strings[0];
        let c = s.call.as_ref().unwrap();
        assert_eq!(c.callee, "format");
        assert!(c.is_macro);
        let o = s.outer_call.as_ref().unwrap();
        assert_eq!(o.callee, "observe");
        assert!(o.method);
        assert!(o.first_arg, "format! is part of the first argument");
    }

    #[test]
    fn second_argument_literals_are_not_first_arg() {
        let f = idx("fn f() { warn(\"a.b\", \"c.d\"); g([1, 2], \"e.f\"); }");
        assert!(f.strings[0].call.as_ref().unwrap().first_arg);
        assert!(!f.strings[1].call.as_ref().unwrap().first_arg);
        // The comma inside `[1, 2]` is shielded; the one after `]` isn't.
        assert!(!f.strings[2].call.as_ref().unwrap().first_arg);
    }

    #[test]
    fn env_var_reads_carry_their_qualifier() {
        let f = idx("fn f() { std::env::var(\"SLM_THREADS\").ok(); }");
        let c = f.strings[0].call.as_ref().unwrap();
        assert_eq!(c.callee, "var");
        assert_eq!(c.qualifier.as_deref(), Some("env"));
    }

    #[test]
    fn test_region_strings_are_masked() {
        let src = "fn f() { t.inc(\"real.key\"); }\n#[cfg(test)]\nmod tests { fn g() { t.inc(\"fake.key\"); } }";
        let f = idx(src);
        assert!(!f.strings[0].in_test);
        assert!(f.strings[1].in_test);
    }

    #[test]
    fn plain_literals_have_no_call_context() {
        let f = idx("const K: &str = \"not.a.call\";");
        assert!(f.strings[0].call.is_none());
    }

    #[test]
    fn multiline_doc_string_is_one_uncalled_literal() {
        // Key- and knob-shaped text inside a plain string assignment
        // must not look like a harvestable call argument.
        let f =
            idx("fn f() { let doc = \"SLM_THREADS controls\ntrain.loss sampling\"; use_(doc); }");
        assert_eq!(f.strings.len(), 1);
        assert!(f.strings[0].call.is_none());
        assert!(f.strings[0].text.contains("SLM_THREADS"));
    }

    #[test]
    fn enums_list_their_variants() {
        let src = "#[repr(u8)]\npub enum Msg {\n  Hello = 1,\n  #[allow(dead_code)]\n  Data(u32),\n  Done { code: u8 },\n}";
        let f = idx(src);
        assert_eq!(f.enums.len(), 1);
        let e = &f.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Hello", "Data", "Done"]);
        assert_eq!(e.variants[0].1, 3);
    }

    #[test]
    fn fn_shape_facts_for_determinism() {
        let src = "fn split(xs: &[f32]) -> f32 {\n  let mut acc_lo = 0.0;\n  let mut acc_hi = 0.0;\n  for k in (0..4).rev() { acc_lo += xs[k]; }\n  acc_lo + acc_hi\n}";
        let f = idx(src);
        let fi = &f.fns[0];
        assert_eq!(fi.name, "split");
        assert_eq!(fi.accumulators.len(), 2);
        assert_eq!(fi.add_pairs.len(), 1);
        assert_eq!(fi.add_pairs[0].0, "acc_lo");
        assert_eq!(fi.add_pairs[0].1, "acc_hi");
        assert_eq!(fi.loops.len(), 1);
        assert!(fi.loops[0].rev);
        assert_eq!(fi.loops[0].binder, "k");
    }

    #[test]
    fn compound_assignment_is_not_an_add_pair() {
        let f = idx("fn f() { let mut acc = 0.0; acc += x; let y = a + b; }");
        let fi = &f.fns[0];
        assert_eq!(fi.add_pairs.len(), 1);
        assert_eq!(fi.add_pairs[0].0, "a");
    }

    #[test]
    fn path_refs_capture_enum_uses() {
        let f = idx("fn f(m: MsgType) { match m { MsgType::Hello => {} MsgType::Nack => {} } }");
        let tails: Vec<&str> = f
            .path_refs
            .iter()
            .filter(|p| p.head == "MsgType")
            .map(|p| p.tail.as_str())
            .collect();
        assert_eq!(tails, vec!["Hello", "Nack"]);
    }

    #[test]
    fn byte_strings_are_flagged() {
        let f = idx("fn f() { t.inc(b\"raw.bytes\"); }");
        assert!(f.strings[0].byte);
    }

    #[test]
    fn array_consts_record_their_path_refs() {
        let f = idx("impl M { pub const ALL: [M; 2] = [M::A, M::B]; }\nconst N: usize = 3;");
        assert_eq!(f.consts.len(), 1);
        assert_eq!(f.consts[0].name, "ALL");
        assert_eq!(
            f.consts[0].refs,
            vec![
                ("M".to_string(), "A".to_string()),
                ("M".to_string(), "B".to_string())
            ]
        );
    }

    fn det(src: &str) -> Vec<crate::Finding> {
        let files = vec![index_file(
            src,
            "crates/t/src/k.rs",
            "sl-tensor",
            TargetKind::Lib,
        )];
        let crates: std::collections::BTreeSet<String> = ["sl-tensor".to_string()].into();
        check_determinism(&files, &crates)
    }

    #[test]
    fn split_accumulator_and_rev_k_are_flagged() {
        let src = "pub fn dot(a: &[f32], b: &[f32]) -> f32 {\n  let mut acc_lo = 0.0f32;\n  let mut acc_hi = 0.0f32;\n  for k in 0..a.len()/2 { acc_lo += a[k]*b[k]; }\n  for k in (a.len()/2..a.len()).rev() { acc_hi += a[k]*b[k]; }\n  acc_lo + acc_hi\n}";
        let findings = det(src);
        let rules: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert!(rules.contains(&("det-split-acc", 6)), "{findings:?}");
        assert!(rules.contains(&("det-rev-k", 5)), "{findings:?}");
    }

    #[test]
    fn single_accumulator_array_kernels_stay_clean() {
        // The real gemm micro-kernel shape: one `acc` array, ascending
        // k, per-output-element slots — no findings.
        let src = "pub fn micro(a: &[f32], b: &[f32], c: &mut [f32]) {\n  let mut acc = [0.0f32; 4];\n  for k in 0..a.len() { for j in 0..4 { acc[j] += a[k] * b[k * 4 + j]; } }\n  for j in 0..4 { c[j] = acc[j]; }\n}";
        assert!(det(src).is_empty(), "{:?}", det(src));
    }

    #[test]
    fn fused_and_reducing_intrinsics_are_flagged() {
        let src = "pub fn fused(a: V, b: V, c: V) -> V {\n  _mm256_fmadd_ps(a, b, c)\n}\n\
                   pub fn reduce(v: V) -> f32 {\n  vaddvq_f32(v)\n}";
        let findings = det(src);
        let pins: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(
            pins,
            vec![("det-fused-madd", 2), ("det-lane-reduce", 5)],
            "{findings:?}"
        );
        assert!(findings[0].message.contains("_mm256_fmadd_ps"));
    }

    #[test]
    fn plain_simd_adds_and_defs_are_not_intrinsic_findings() {
        // The sanctioned kernel idiom — separate mul/add, per-element
        // lanes — plus a *definition* whose name merely looks fused.
        let src = "pub fn kernel(a: V, b: V, acc: V) -> V {\n  _mm256_add_ps(acc, _mm256_mul_ps(a, b))\n}\n\
                   fn my_fmadd_helper(x: f32) -> f32 { x }";
        assert!(det(src).is_empty(), "{:?}", det(src));
    }

    #[test]
    fn non_k_rev_loops_and_test_fns_are_exempt() {
        let src = "pub fn strides(dims: &[usize]) {\n  for i in (0..dims.len()-1).rev() { let _ = i; }\n}\n#[cfg(test)]\nmod tests {\n  fn t() { let mut acc_a = 0.0; let mut acc_b = 0.0; let s = acc_a + acc_b; }\n}";
        assert!(det(src).is_empty());
    }
}
