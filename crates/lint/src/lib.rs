//! # `sl-lint` — workspace-aware static analyzer for the split-learning repo
//!
//! A std-only, token-level linter purpose-built for this workspace. It is
//! not a general Rust parser: it lexes each source file into a token
//! stream (correctly skipping string/char literals, raw strings and
//! nested comments — see [`lexer`]) and enforces a small set of
//! repo-specific invariants that `rustc` and `clippy` cannot express:
//!
//! | rule id            | invariant                                                       |
//! |--------------------|-----------------------------------------------------------------|
//! | `no-unwrap`        | no `.unwrap()` / `.expect()` in non-test library code           |
//! | `no-nondeterminism`| no ambient RNG/clock/thread/socket calls (`rand::rng()`, `thread_rng()`, `Instant::now()`, `SystemTime::now()`, `thread::spawn()`, `available_parallelism()`, `TcpListener::bind()`, `TcpStream::connect()`, `UdpSocket::bind()`) outside telemetry; sl-tensor's ComputePool and sl-net's transport carry inline waivers |
//! | `no-print`         | no `println!`/`eprintln!` outside binaries and telemetry sinks  |
//! | `float-cmp`        | no `==`/`!=` against float literals                             |
//! | `lossy-cast`       | no narrowing `as` casts inside the numerics crates              |
//! | `unsafe-containment`| `unsafe` only inside `crates/tensor/src/simd/` (or waived)     |
//! | `deps-policy`      | external dependencies limited to the allowed set                |
//! | `bad-waiver`       | malformed `// slm-lint: allow(...)` comment                     |
//! | `stale-allowlist`  | allowlist entry with no matching finding (burn-down ratchet)    |
//!
//! Known pre-existing findings live in a checked-in burn-down allowlist
//! ([`allowlist`]) with exact-count semantics: new findings fail the run
//! immediately, and entries that stop matching are flagged stale so the
//! list can only shrink. Individual sites are waived inline with
//! `// slm-lint: allow(rule-id) reason`, which doubles as the
//! "documented expect" mechanism.
//!
//! The `slm-lint` binary additionally runs the **offline shape-contract
//! checker** (`--shapes`, behind the `shapes` cargo feature): it
//! propagates symbolic shapes through the exact UE/BS stacks the trainer
//! builds — via `sl_core::WiringSpec` — for every experiment profile,
//! rejecting miswired configurations with a per-layer trace before any
//! tensor is allocated.

pub mod allowlist;
pub mod deps;
pub mod index;
pub mod keys;
pub mod knobs;
pub mod lexer;
pub mod model;
pub mod protocol;
pub mod rules;
pub mod workspace;

pub use allowlist::Allowlist;
pub use index::FileIndex;
pub use rules::{scan_file, FileContext, ScanResult};
pub use workspace::TargetKind;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One lint finding, addressed rustc-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `no-unwrap`).
    pub rule: String,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line (0 for file-level findings such as `stale-allowlist`).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

impl Finding {
    /// Machine-readable JSON object for this finding.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            escape_json(&self.rule),
            escape_json(&self.file),
            self.line,
            self.col,
            escape_json(&self.message)
        )
    }
}

/// Lint policy knobs. The defaults encode this repo's rules; they are a
/// struct (rather than constants) so the golden-fixture tests can point
/// the same engine at a synthetic crate.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates allowed to use wall clocks and ambient RNG entropy.
    pub determinism_exempt: BTreeSet<String>,
    /// Crates allowed to use `println!`/`eprintln!` in library code
    /// (console telemetry sinks).
    pub print_exempt: BTreeSet<String>,
    /// Crates where narrowing `as` casts are flagged (the numeric core,
    /// where a silent `usize as f32` truncation corrupts results).
    pub lossy_cast_crates: BTreeSet<String>,
    /// External (non-workspace) dependencies every manifest may declare.
    pub allowed_external_deps: BTreeSet<String>,
    /// Crates whose kernels the `--determinism` heuristics guard
    /// (split accumulators, reversed k loops, fused/reducing intrinsics).
    pub determinism_kernel_crates: BTreeSet<String>,
    /// Path prefixes (repo-relative, `/`-separated) where `unsafe` is
    /// sanctioned; everywhere else library `unsafe` is a finding.
    pub unsafe_allowed_paths: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let set = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        LintConfig {
            determinism_exempt: set(&["sl-telemetry"]),
            print_exempt: set(&["sl-telemetry"]),
            lossy_cast_crates: set(&["sl-tensor", "sl-nn"]),
            allowed_external_deps: set(&["rand", "proptest", "criterion"]),
            determinism_kernel_crates: set(&["sl-tensor"]),
            unsafe_allowed_paths: vec!["crates/tensor/src/simd/".to_string()],
        }
    }
}

/// Raw scan output before allowlist reconciliation.
#[derive(Debug, Default)]
pub struct Collected {
    /// Every finding from every file and manifest, sorted.
    pub findings: Vec<Finding>,
    /// Findings suppressed by inline waivers.
    pub waived: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Full lint run outcome after allowlist reconciliation.
#[derive(Debug)]
pub struct LintReport {
    /// Findings that fail the run (not waived, not allowlisted; includes
    /// `stale-allowlist` entries).
    pub findings: Vec<Finding>,
    /// Findings absorbed by the burn-down allowlist.
    pub allowlisted: Vec<Finding>,
    /// Findings suppressed by inline waivers.
    pub waived: Vec<Finding>,
    /// Counts per rule over all real findings (active + allowlisted).
    pub rule_counts: BTreeMap<String, usize>,
    /// Total granted instances in the allowlist (the burn-down metric).
    pub allowlist_len: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-pass finding counts for the semantic passes the binary ran
    /// (`keys`, `knobs`, `protocol`, `determinism`, `shapes`). Empty for
    /// token-rule-only runs.
    pub passes: BTreeMap<String, usize>,
}

impl LintReport {
    /// True when the run passes (no active findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable JSON summary (std-only serializer).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(Finding::to_json).collect();
        let counts: Vec<String> = self
            .rule_counts
            .iter()
            .map(|(rule, n)| format!("\"{}\":{}", escape_json(rule), n))
            .collect();
        let passes: Vec<String> = self
            .passes
            .iter()
            .map(|(pass, n)| format!("\"{}\":{}", escape_json(pass), n))
            .collect();
        format!(
            "{{\"clean\":{},\"files_scanned\":{},\"allowlist_len\":{},\"allowlisted\":{},\"waived\":{},\"rule_counts\":{{{}}},\"passes\":{{{}}},\"findings\":[{}]}}",
            self.clean(),
            self.files_scanned,
            self.allowlist_len,
            self.allowlisted.len(),
            self.waived.len(),
            counts.join(","),
            passes.join(","),
            findings.join(",")
        )
    }
}

/// Scans every workspace package under `root`: the six token rules on
/// each `.rs` file plus `deps-policy` on each manifest. Findings carry
/// repo-relative paths so the allowlist is location-independent.
pub fn collect(root: &Path, config: &LintConfig) -> io::Result<Collected> {
    let mut out = Collected::default();
    for pkg in workspace::discover(root)? {
        let manifest_text = fs::read_to_string(&pkg.manifest)?;
        let manifest_rel = relative(root, &pkg.manifest);
        deps::check_manifest(
            &manifest_text,
            Path::new(&manifest_rel),
            config,
            &mut out.findings,
        );
        for file in workspace::rust_sources(&pkg)? {
            let src = fs::read_to_string(&file)?;
            let rel = relative(root, &file);
            let ctx = FileContext {
                crate_name: &pkg.name,
                target: workspace::classify(&pkg.root, &file),
                path: &rel,
            };
            let result = scan_file(&src, &ctx, config);
            out.findings.extend(result.findings);
            out.waived.extend(result.waived);
            out.files_scanned += 1;
        }
    }
    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(out)
}

/// Runs the full lint pass: [`collect`], then reconcile against the
/// checked-in allowlist at `crates/lint/allowlist.txt` (if present).
pub fn run(root: &Path, config: &LintConfig) -> io::Result<LintReport> {
    let collected = collect(root, config)?;
    let allowlist = load_allowlist(root)?;
    let reconciled = allowlist.reconcile(collected.findings);

    let mut rule_counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in reconciled
        .active
        .iter()
        .chain(reconciled.allowlisted.iter())
    {
        *rule_counts.entry(f.rule.clone()).or_insert(0) += 1;
    }

    let mut findings = reconciled.active;
    findings.extend(reconciled.stale);
    Ok(LintReport {
        findings,
        allowlisted: reconciled.allowlisted,
        waived: collected.waived,
        rule_counts,
        allowlist_len: allowlist.len(),
        files_scanned: collected.files_scanned,
        passes: BTreeMap::new(),
    })
}

/// Builds the item-level semantic index over every workspace package
/// under `root`: string literals with call context, fn/enum/const facts
/// and `Enum::Variant` path refs, all with file:line provenance. The
/// `--keys`, `--knobs`, `--protocol` and `--determinism` passes consume
/// this instead of re-lexing per pass.
pub fn build_index(root: &Path, _config: &LintConfig) -> io::Result<Vec<FileIndex>> {
    let mut out = Vec::new();
    for pkg in workspace::discover(root)? {
        for file in workspace::rust_sources(&pkg)? {
            let src = fs::read_to_string(&file)?;
            let rel = relative(root, &file);
            let target = workspace::classify(&pkg.root, &file);
            out.push(index::index_file(&src, &rel, &pkg.name, target));
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Loads `crates/lint/allowlist.txt` under `root`; absent file = empty
/// allowlist, malformed file = hard error (a typo must not silently
/// grant findings).
pub fn load_allowlist(root: &Path) -> io::Result<Allowlist> {
    let path = root.join("crates/lint/allowlist.txt");
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = fs::read_to_string(&path)?;
    Allowlist::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_is_rustc_style() {
        let f = Finding {
            rule: "no-unwrap".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            col: 7,
            message: "call `.unwrap()` in library code".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:12:7: no-unwrap: call `.unwrap()` in library code"
        );
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = Finding {
            rule: "r".into(),
            file: "f".into(),
            line: 1,
            col: 2,
            message: "say \"hi\"".into(),
        };
        assert!(f.to_json().contains("\\\"hi\\\""));
    }

    #[test]
    fn default_config_encodes_repo_policy() {
        let c = LintConfig::default();
        assert!(c.determinism_exempt.contains("sl-telemetry"));
        assert!(c.print_exempt.contains("sl-telemetry"));
        assert!(c.lossy_cast_crates.contains("sl-tensor"));
        assert!(c.lossy_cast_crates.contains("sl-nn"));
        for dep in ["rand", "proptest", "criterion"] {
            assert!(c.allowed_external_deps.contains(dep));
        }
        assert_eq!(
            c.unsafe_allowed_paths,
            vec!["crates/tensor/src/simd/".to_string()]
        );
    }

    #[test]
    fn report_json_shape() {
        let report = LintReport {
            findings: vec![],
            allowlisted: vec![],
            waived: vec![],
            rule_counts: BTreeMap::new(),
            allowlist_len: 4,
            files_scanned: 10,
            passes: [("keys".to_string(), 2)].into_iter().collect(),
        };
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"allowlist_len\":4"));
        assert!(json.contains("\"files_scanned\":10"));
        assert!(json.contains("\"passes\":{\"keys\":2}"));
    }
}
