//! Offline bounded model checker for the sl-net exchange protocol.
//!
//! Explores the *joint* UE/BS state machine of DESIGN §9 —
//! handshake → train steps → shutdown, each exchange subject to the
//! fault alphabet the runtime's `Faulty<T>` wrapper can realize — by
//! explicit-state breadth-first search, and proves three invariants
//! over every reachable interleaving:
//!
//! - **no-double-apply** — no trace applies a train exchange's
//!   optimizer step more than once. This is the cached-resend rule:
//!   on a client Nack the server must resend its cached reply, never
//!   recompute (PR 5 tests this dynamically on one fault plan; the
//!   checker proves it for *all* bounded plans).
//! - **retry-termination** — the reachable graph is acyclic and every
//!   maximal trace ends in `Done` or `Aborted`; retries cannot loop
//!   forever because the attempt counter is strictly increasing and
//!   capped by the retry budget.
//! - **no-deadlock** — every non-terminal state has a successor.
//!
//! The fault model mirrors `crates/net/src/fault.rs` semantics exactly:
//! faults are write-side, so *requests* can be dropped but replies
//! cannot (`ArmedPlan::arm_read` asserts this); Nack/control frames
//! always deliver clean (fault plans are scoped to one message type);
//! `Delay` only perturbs deadline accounting, so it transitions like
//! `Deliver` but is kept as a distinct edge label so counterexample
//! traces stay readable.
//!
//! [`Mutation::RecomputeOnNack`] seeds the historical bug the
//! invariant guards against (server recomputes on Nack instead of
//! resending the cache). `slm-lint --protocol` runs the checker once
//! clean and once mutated: the mutant **must** produce a
//! no-double-apply counterexample, proving the checker is not
//! vacuous — the same self-test pattern as `--miswire`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Maximum train steps the fixed-width state can hold.
pub const MAX_STEPS: usize = 4;

/// Seeded protocol mutations for checker self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful model of the implementation.
    None,
    /// On a client Nack (corrupt reply), the server recomputes the
    /// exchange — re-applying the optimizer step — instead of
    /// resending its cached reply.
    RecomputeOnNack,
}

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Train exchanges between handshake and shutdown (≤ [`MAX_STEPS`]).
    pub steps: u8,
    /// Retry budget per exchange: total attempts allowed beyond the
    /// first before the client aborts (mirrors
    /// `RetryPolicy::max_extra_attempts`).
    pub retry_budget: u8,
    /// Seeded mutation.
    pub mutation: Mutation,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            steps: 2,
            retry_budget: 3,
            mutation: Mutation::None,
        }
    }
}

/// One invariant violation with its counterexample trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Violated invariant name.
    pub invariant: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Edge labels from the initial state to the violating state.
    pub trace: Vec<String>,
}

/// Exploration result.
#[derive(Debug)]
pub struct ModelOutcome {
    /// Distinct states reached.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// `Done` is reachable.
    pub done_reachable: bool,
    /// `Aborted` (budget exhaustion) is reachable.
    pub abort_reachable: bool,
    /// Invariant violations (empty = proved).
    pub violations: Vec<Violation>,
}

/// Exchange phases: 0 = handshake, 1..=steps = train steps,
/// steps+1 = shutdown, then the terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Running exchange `i`.
    Exchange(u8),
    /// Clean shutdown completed.
    Done,
    /// Retry budget exhausted; client gave up.
    Aborted,
}

/// Joint UE/BS state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct St {
    phase: Phase,
    /// Extra attempts consumed in the current exchange.
    attempts: u8,
    /// The request was processed; the client is waiting for a
    /// (possibly re-sent) reply.
    awaiting_reply: bool,
    /// Optimizer applications per train exchange (capped at 2 — the
    /// invariant trips at 2, so higher counts are indistinguishable).
    applied: [u8; MAX_STEPS],
}

impl St {
    fn initial() -> St {
        St {
            phase: Phase::Exchange(0),
            attempts: 0,
            awaiting_reply: false,
            applied: [0; MAX_STEPS],
        }
    }

    fn terminal(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Aborted)
    }
}

fn exchange_name(cfg: &ModelConfig, i: u8) -> String {
    if i == 0 {
        "handshake".to_string()
    } else if i <= cfg.steps {
        format!("step{}", i - 1)
    } else {
        "shutdown".to_string()
    }
}

/// Successor states of `s` with edge labels, under `cfg`.
fn successors(cfg: &ModelConfig, s: &St) -> Vec<(String, St)> {
    let Phase::Exchange(ex) = s.phase else {
        return Vec::new();
    };
    let name = exchange_name(cfg, ex);
    let is_step = ex >= 1 && ex <= cfg.steps;
    let step_idx = if is_step { (ex - 1) as usize } else { 0 };
    let last_exchange = ex == cfg.steps + 1;
    let mut out = Vec::new();

    let retry = |s: &St| -> St {
        if s.attempts + 1 > cfg.retry_budget {
            St {
                phase: Phase::Aborted,
                ..*s
            }
        } else {
            St {
                attempts: s.attempts + 1,
                ..*s
            }
        }
    };

    if !s.awaiting_reply {
        // Request leg. Deliver/Delay: the server decodes the frame and
        // processes it — a train exchange applies the optimizer step —
        // then the reply leg begins.
        let mut processed = *s;
        processed.awaiting_reply = true;
        if is_step {
            processed.applied[step_idx] = (processed.applied[step_idx] + 1).min(2);
        }
        out.push((format!("{name}:req-deliver"), processed));
        out.push((format!("{name}:req-delay"), processed));
        // Drop: write-side loss — the server never sees the frame; the
        // client's read deadline expires and it resends.
        out.push((format!("{name}:req-drop-timeout"), retry(s)));
        // Corrupt: the server's checksum rejects the frame *before*
        // decoding (never desyncs, never applies) and Nacks clean; the
        // client resends the request.
        out.push((format!("{name}:req-corrupt-nack"), retry(s)));
    } else {
        // Reply leg. Deliver/Delay: exchange complete.
        let next = if last_exchange {
            St {
                phase: Phase::Done,
                attempts: 0,
                awaiting_reply: false,
                applied: s.applied,
            }
        } else {
            St {
                phase: Phase::Exchange(ex + 1),
                attempts: 0,
                awaiting_reply: false,
                applied: s.applied,
            }
        };
        out.push((format!("{name}:reply-deliver"), next));
        out.push((format!("{name}:reply-delay"), next));
        // Corrupt reply: the client Nacks (clean — control frames are
        // outside the fault scope) and re-reads. The faithful server
        // resends its *cached* reply without touching the optimizer;
        // the mutant recomputes, double-applying the step.
        let mut resend = retry(s);
        if cfg.mutation == Mutation::RecomputeOnNack
            && is_step
            && !matches!(resend.phase, Phase::Aborted)
        {
            resend.applied[step_idx] = (resend.applied[step_idx] + 1).min(2);
        }
        out.push((format!("{name}:reply-corrupt-nack-resend"), resend));
    }
    out
}

/// Runs the bounded exploration and checks every invariant.
pub fn check(cfg: &ModelConfig) -> ModelOutcome {
    let steps = cfg.steps.min(MAX_STEPS as u8);
    let cfg = ModelConfig { steps, ..*cfg };
    let init = St::initial();
    let mut parent: BTreeMap<St, (St, String)> = BTreeMap::new();
    let mut seen: BTreeSet<St> = BTreeSet::new();
    let mut queue: VecDeque<St> = VecDeque::new();
    let mut violations = Vec::new();
    let mut transitions = 0usize;
    let mut done_reachable = false;
    let mut abort_reachable = false;

    seen.insert(init);
    queue.push_back(init);

    while let Some(s) = queue.pop_front() {
        if s.phase == Phase::Done {
            done_reachable = true;
        }
        if s.phase == Phase::Aborted {
            abort_reachable = true;
            // Abort is only legal at budget exhaustion.
            if s.attempts < cfg.retry_budget {
                violations.push(Violation {
                    invariant: "retry-termination",
                    message: format!(
                        "client aborted with {} attempts, below the budget of {}",
                        s.attempts, cfg.retry_budget
                    ),
                    trace: trace_to(&parent, &s),
                });
            }
        }
        let succs = successors(&cfg, &s);
        if succs.is_empty() && !s.terminal() {
            violations.push(Violation {
                invariant: "no-deadlock",
                message: "non-terminal state has no successor".to_string(),
                trace: trace_to(&parent, &s),
            });
        }
        for (label, next) in succs {
            transitions += 1;
            // Invariant checks on edge creation so the counterexample
            // trace includes the offending transition.
            if next.applied.iter().any(|&a| a >= 2) {
                let mut trace = trace_to(&parent, &s);
                trace.push(label.clone());
                violations.push(Violation {
                    invariant: "no-double-apply",
                    message: "a train exchange applied its optimizer step twice".to_string(),
                    trace,
                });
                continue; // do not explore past a violation
            }
            if seen.insert(next) {
                parent.insert(next, (s, label));
                queue.push_back(next);
            }
        }
    }

    // Termination: the BFS parent structure cannot witness cycles, so
    // run an explicit DFS over the explored graph. The attempt counter
    // argument says this can never fire; the checker verifies the
    // argument instead of assuming it.
    if let Some(cycle_state) = find_cycle(&cfg, init) {
        violations.push(Violation {
            invariant: "retry-termination",
            message: "reachable cycle: a fault interleaving can retry forever".to_string(),
            trace: trace_to(&parent, &cycle_state),
        });
    }
    if !done_reachable {
        violations.push(Violation {
            invariant: "no-deadlock",
            message: "clean shutdown is unreachable".to_string(),
            trace: Vec::new(),
        });
    }

    ModelOutcome {
        states: seen.len(),
        transitions,
        done_reachable,
        abort_reachable,
        violations,
    }
}

/// Reconstructs the edge-label path from the initial state to `s`.
fn trace_to(parent: &BTreeMap<St, (St, String)>, s: &St) -> Vec<String> {
    let mut labels = Vec::new();
    let mut cur = *s;
    while let Some((prev, label)) = parent.get(&cur) {
        labels.push(label.clone());
        cur = *prev;
    }
    labels.reverse();
    labels
}

/// Iterative DFS cycle detection (white/grey/black) over the model
/// graph. Returns a state on a cycle, if any.
fn find_cycle(cfg: &ModelConfig, init: St) -> Option<St> {
    #[derive(PartialEq, Clone, Copy)]
    enum Color {
        Grey,
        Black,
    }
    let mut color: BTreeMap<St, Color> = BTreeMap::new();
    // (state, next-successor-index) stack.
    let mut stack: Vec<(St, usize)> = vec![(init, 0)];
    color.insert(init, Color::Grey);
    while let Some((s, i)) = stack.pop() {
        let succs = successors(cfg, &s);
        // Skip double-apply states, mirroring the BFS frontier cut.
        let succs: Vec<St> = succs
            .into_iter()
            .map(|(_, n)| n)
            .filter(|n| n.applied.iter().all(|&a| a < 2))
            .collect();
        if i < succs.len() {
            stack.push((s, i + 1));
            let next = succs[i];
            match color.get(&next) {
                Some(Color::Grey) => return Some(next),
                Some(Color::Black) => {}
                None => {
                    color.insert(next, Color::Grey);
                    stack.push((next, 0));
                }
            }
        } else {
            color.insert(s, Color::Black);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_proves_all_invariants() {
        let out = check(&ModelConfig::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.done_reachable);
        assert!(out.abort_reachable, "budget exhaustion must be reachable");
        assert!(
            out.states > 20,
            "state space unexpectedly small: {}",
            out.states
        );
    }

    #[test]
    fn recompute_on_nack_mutation_is_caught_with_a_trace() {
        let out = check(&ModelConfig {
            mutation: Mutation::RecomputeOnNack,
            ..ModelConfig::default()
        });
        let v = out
            .violations
            .iter()
            .find(|v| v.invariant == "no-double-apply")
            .expect("mutant must violate no-double-apply");
        // The counterexample must pass through a corrupted train reply.
        assert!(
            v.trace
                .iter()
                .any(|l| l.contains("step") && l.contains("reply-corrupt")),
            "{:?}",
            v.trace
        );
        // And the trace must be replayable from the initial state: it
        // starts with a handshake leg.
        assert!(v.trace[0].starts_with("handshake:"), "{:?}", v.trace);
    }

    #[test]
    fn corrupt_reply_storm_exhausts_the_budget_without_reapplying() {
        // With budget 1, one corrupt reply then another aborts; the
        // faithful model still never double-applies.
        let out = check(&ModelConfig {
            retry_budget: 1,
            ..ModelConfig::default()
        });
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.abort_reachable);
    }

    #[test]
    fn zero_steps_is_handshake_then_shutdown() {
        let out = check(&ModelConfig {
            steps: 0,
            ..ModelConfig::default()
        });
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.done_reachable);
    }
}
