//! Workspace discovery and target classification.
//!
//! The repo's layout is fixed (a root umbrella package plus `crates/*`),
//! so discovery is a directory walk, not a full manifest resolver: the
//! root `Cargo.toml` and every `crates/*/Cargo.toml` define a package,
//! and each package's Rust sources live under `src/`, `tests/`,
//! `benches/` and `examples/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a source file is compiled, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code — every rule applies.
    Lib,
    /// Binary target (`src/bin/*`, `src/main.rs`) — operational code
    /// that may print and read wall time.
    Bin,
    /// Tests, benches and examples — exempt, like `#[cfg(test)]`.
    TestLike,
}

/// One workspace package.
#[derive(Debug, Clone)]
pub struct Package {
    /// Package name from its manifest.
    pub name: String,
    /// Package root directory (absolute).
    pub root: PathBuf,
    /// The package's `Cargo.toml` (absolute).
    pub manifest: PathBuf,
}

/// Discovers the root package and every `crates/*` member. Paths are
/// returned in deterministic (sorted) order.
pub fn discover(root: &Path) -> io::Result<Vec<Package>> {
    let mut packages = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if let Some(name) = package_name(&fs::read_to_string(&root_manifest)?) {
        packages.push(Package {
            name,
            root: root.to_path_buf(),
            manifest: root_manifest,
        });
    }
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                members.push(path);
            }
        }
    }
    members.sort();
    for dir in members {
        let manifest = dir.join("Cargo.toml");
        let text = fs::read_to_string(&manifest)?;
        let name = package_name(&text).unwrap_or_else(|| {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        packages.push(Package {
            name,
            root: dir,
            manifest,
        });
    }
    Ok(packages)
}

/// Extracts `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Classifies a source file within its package.
pub fn classify(pkg_root: &Path, file: &Path) -> TargetKind {
    let rel = file.strip_prefix(pkg_root).unwrap_or(file);
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match parts.next().as_deref() {
        Some("tests") | Some("benches") | Some("examples") => TargetKind::TestLike,
        Some("src") => match parts.next().as_deref() {
            Some("bin") => TargetKind::Bin,
            Some("main.rs") => TargetKind::Bin,
            _ => TargetKind::Lib,
        },
        _ => TargetKind::Lib,
    }
}

/// All `.rs` files of a package, sorted: `src/`, `tests/`, `benches/`,
/// `examples/` (the root package's walk does not descend into `crates/`
/// because only those four directories are visited).
pub fn rust_sources(pkg: &Package) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in ["src", "tests", "benches", "examples"] {
        let path = pkg.root.join(dir);
        if path.is_dir() {
            walk(&path, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_targets() {
        let root = Path::new("/repo/crates/x");
        assert_eq!(classify(root, &root.join("src/lib.rs")), TargetKind::Lib);
        assert_eq!(
            classify(root, &root.join("src/deep/mod.rs")),
            TargetKind::Lib
        );
        assert_eq!(
            classify(root, &root.join("src/bin/tool.rs")),
            TargetKind::Bin
        );
        assert_eq!(classify(root, &root.join("src/main.rs")), TargetKind::Bin);
        assert_eq!(
            classify(root, &root.join("tests/it.rs")),
            TargetKind::TestLike
        );
        assert_eq!(
            classify(root, &root.join("benches/b.rs")),
            TargetKind::TestLike
        );
        assert_eq!(
            classify(root, &root.join("examples/e.rs")),
            TargetKind::TestLike
        );
    }

    #[test]
    fn package_name_parses() {
        let toml = "[workspace]\nmembers = []\n[package]\nname = \"sl-x\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml), Some("sl-x".into()));
        assert_eq!(package_name("[dependencies]\nname = \"nope\""), None);
    }
}
