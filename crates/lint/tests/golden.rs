//! Golden tests against `fixtures/bad-crate`: every rule has exactly one
//! seeded violation there, and each must be reported with the exact rule
//! id, line and column — no more, no less.

use sl_lint::{collect, run, LintConfig};
use std::path::Path;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/bad-crate"))
}

/// The fixture crate is not in the default `lossy_cast_crates` set, so
/// opt it in to exercise that rule too.
fn fixture_config() -> LintConfig {
    let mut config = LintConfig::default();
    config.lossy_cast_crates.insert("bad-crate".into());
    config
}

#[test]
fn every_rule_fires_exactly_once_at_its_seeded_location() {
    let collected = collect(fixture_root(), &fixture_config()).unwrap();
    let got: Vec<(String, String, u32, u32)> = collected
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line, f.col))
        .collect();
    let lib = |rule: &str, line, col| (rule.to_string(), "src/lib.rs".to_string(), line, col);
    let expected = vec![
        ("deps-policy".to_string(), "Cargo.toml".to_string(), 12, 1),
        lib("no-unwrap", 7, 7),
        lib("no-expect", 11, 7),
        lib("no-nondeterminism", 15, 5),
        lib("no-print", 19, 5),
        lib("float-cmp", 23, 7),
        lib("lossy-cast", 27, 7),
        lib("bad-waiver", 30, 1),
        lib("unsafe-containment", 124, 5),
    ];
    assert_eq!(got, expected, "findings:\n{:#?}", collected.findings);
}

#[test]
fn documented_waiver_suppresses_its_site() {
    let collected = collect(fixture_root(), &fixture_config()).unwrap();
    assert_eq!(collected.waived.len(), 1);
    let w = &collected.waived[0];
    assert_eq!((w.rule.as_str(), w.line), ("no-unwrap", 35));
    // The waived site must not also appear as an active finding.
    assert!(!collected
        .findings
        .iter()
        .any(|f| f.rule == "no-unwrap" && f.line == 35));
}

#[test]
fn run_reports_the_fixture_as_dirty() {
    // The fixture has no allowlist, so every finding stays active.
    let report = run(fixture_root(), &fixture_config()).unwrap();
    assert!(!report.clean());
    assert_eq!(report.findings.len(), 9);
    assert_eq!(report.allowlist_len, 0);
    assert_eq!(report.rule_counts["no-unwrap"], 1);
    assert_eq!(report.rule_counts["deps-policy"], 1);
    let json = report.to_json();
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("\"rule\":\"no-unwrap\""));
}

#[test]
fn findings_render_rustc_style() {
    let collected = collect(fixture_root(), &fixture_config()).unwrap();
    let rendered: Vec<String> = collected.findings.iter().map(|f| f.to_string()).collect();
    assert!(rendered
        .iter()
        .any(|r| r.starts_with("src/lib.rs:7:7: no-unwrap:")));
    assert!(rendered
        .iter()
        .any(|r| r.starts_with("Cargo.toml:12:1: deps-policy:")));
}

// ---- semantic passes: one seeded violation each, pinned to file:line --

fn fixture_index() -> Vec<sl_lint::FileIndex> {
    sl_lint::build_index(fixture_root(), &fixture_config()).unwrap()
}

#[test]
fn orphan_key_is_pinned_to_its_publish_site() {
    let specs = vec![sl_lint::keys::KeySpec::new("telemetry.good.key", &[])];
    let findings = sl_lint::keys::check_keys(&fixture_index(), &specs);
    let orphan = findings
        .iter()
        .find(|f| f.rule == "key-undeclared")
        .expect("seeded orphan key must be reported");
    assert_eq!((orphan.file.as_str(), orphan.line), ("src/lib.rs", 75));
    assert!(orphan.message.contains("bogus.orphan.key"), "{orphan}");
    // The synthetic declaration is also dead — nothing publishes it.
    assert!(findings.iter().any(|f| f.rule == "key-dead"));
}

#[test]
fn undeclared_knob_is_pinned_to_its_env_read() {
    let findings = sl_lint::knobs::check_knobs(&fixture_index(), &[], &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(
        (f.rule.as_str(), f.file.as_str(), f.line),
        ("knob-undeclared", "src/lib.rs", 80)
    );
    assert!(f.message.contains("SLM_BOGUS"), "{f}");
}

#[test]
fn unhandled_msg_type_is_pinned_to_its_variant() {
    let spec = sl_lint::protocol::ProtocolSpec {
        enum_file: "src/lib.rs".to_string(),
        enum_name: "ProtoMsg".to_string(),
        decode_fn: "from_u8".to_string(),
        groups: vec![("handler".to_string(), vec!["src/lib.rs".to_string()])],
    };
    let findings = sl_lint::protocol::check_protocol(&fixture_index(), &spec);
    let pins: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule.as_str(), f.line)).collect();
    // `Orphan` is declared on line 46; Hello/Data are fully covered.
    assert!(pins.contains(&("protocol-decode", 46)), "{findings:?}");
    assert!(pins.contains(&("protocol-handler", 46)), "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "protocol-annotation" && f.message.contains("lacks")),
        "{findings:?}"
    );
    assert!(
        !pins
            .iter()
            .any(|(r, l)| *r != "protocol-annotation" && (*l == 44 || *l == 45)),
        "covered variants must not be reported: {findings:?}"
    );
}

#[test]
fn double_accumulator_and_reversed_k_are_pinned() {
    let mut config = fixture_config();
    config.determinism_kernel_crates.insert("bad-crate".into());
    let files = sl_lint::build_index(fixture_root(), &config).unwrap();
    let findings = sl_lint::index::check_determinism(&files, &config.determinism_kernel_crates);
    let pins: Vec<(&str, &str, u32)> = findings
        .iter()
        .map(|f| (f.rule.as_str(), f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        pins,
        vec![
            ("det-split-acc", "src/lib.rs", 94),
            ("det-rev-k", "src/lib.rs", 100),
            ("det-fused-madd", "src/lib.rs", 129),
            ("det-lane-reduce", "src/lib.rs", 138),
        ],
        "{findings:?}"
    );
}
