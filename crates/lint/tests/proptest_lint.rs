//! Property tests of the lint lexer on adversarial inputs: sources are
//! assembled from a palette of tricky snippets (raw strings, nested
//! comments, lifetimes vs char literals, ranges vs floats) and the
//! lexer's invariants are checked on every combination.

use proptest::prelude::*;
use sl_lint::lexer::{lex, TokKind};

/// Snippets that must HIDE the marker identifier from the token stream.
const HIDING: [&str; 8] = [
    "\"forbidden_marker\"",
    "\"escaped \\\" forbidden_marker\"",
    "r\"forbidden_marker\"",
    "r#\"raw \"quoted\" forbidden_marker\"#",
    "r##\"# forbidden_marker \"# still\"##",
    "b\"forbidden_marker\"",
    "// forbidden_marker in a line comment\n",
    "/* outer /* nested forbidden_marker */ tail */",
];

/// Visible filler the marker must survive alongside.
const FILLER: [&str; 8] = [
    "fn f(x: u32) -> u32 { x + 1 }",
    "let r = 1..5;",
    "let v: Vec<&'static str> = Vec::new();",
    "let c = 'x';",
    "let nl = '\\n';",
    "let f = 1.5e3f32;",
    "let b = b'z';",
    "impl<'a> Foo<'a> { fn g(&'a self) {} }",
];

fn assemble(picks: &[(usize, bool)]) -> String {
    let mut src = String::new();
    for &(idx, hide) in picks {
        if hide {
            src.push_str(HIDING[idx % HIDING.len()]);
        } else {
            src.push_str(FILLER[idx % FILLER.len()]);
        }
        src.push('\n');
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn strings_and_comments_hide_identifiers(
        picks in proptest::collection::vec((0usize..64, 0usize..2), 0..24),
    ) {
        let picks: Vec<(usize, bool)> =
            picks.into_iter().map(|(i, h)| (i, h == 1)).collect();
        let src = assemble(&picks);
        let out = lex(&src);
        // The marker only ever occurs inside literals/comments, so it
        // must never surface as an identifier token.
        prop_assert!(!out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "forbidden_marker"));
        // Control: appending it as real code makes it visible.
        let visible = format!("{src}\nlet forbidden_marker = 1;\n");
        let out2 = lex(&visible);
        prop_assert!(out2
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "forbidden_marker"));
    }

    #[test]
    fn token_positions_are_in_bounds(
        picks in proptest::collection::vec((0usize..64, 0usize..2), 0..24),
    ) {
        let picks: Vec<(usize, bool)> =
            picks.into_iter().map(|(i, h)| (i, h == 1)).collect();
        let src = assemble(&picks);
        let n_lines = src.lines().count().max(1) as u32;
        let out = lex(&src);
        for t in &out.tokens {
            prop_assert!(t.line >= 1 && t.line <= n_lines, "token {t:?}");
            prop_assert!(t.col >= 1, "token {t:?}");
        }
        for c in &out.comments {
            prop_assert!(c.line >= 1 && c.line <= n_lines, "comment {c:?}");
        }
    }

    #[test]
    fn lifetimes_and_chars_are_distinguished(
        n_lifetimes in 0usize..8,
        n_chars in 0usize..8,
    ) {
        let mut src = String::new();
        for i in 0..n_lifetimes {
            src.push_str(&format!("fn f{i}<'a>(x: &'a u32) -> &'a u32 {{ x }}\n"));
        }
        for i in 0..n_chars {
            src.push_str(&format!("const C{i}: char = 'x';\n"));
        }
        let out = lex(&src);
        let lifetimes = out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = out.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        // Each lifetime-using fn mentions 'a three times; each const has
        // one char literal.
        prop_assert_eq!(lifetimes, n_lifetimes * 3);
        prop_assert_eq!(chars, n_chars);
    }

    #[test]
    fn nested_comments_hide_contents_at_any_depth(depth in 1usize..12) {
        let mut src = String::from("let before = 1; ");
        for _ in 0..depth {
            src.push_str("/* forbidden_marker ");
        }
        src.push_str(" body ");
        for _ in 0..depth {
            src.push_str(" */");
        }
        src.push_str(" let after = 2;");
        let out = lex(&src);
        prop_assert!(!out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "forbidden_marker"));
        // Both sides of the comment survive.
        prop_assert!(out.tokens.iter().any(|t| t.text == "before"));
        prop_assert!(out.tokens.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn raw_string_hash_depth_is_respected(hashes in 1usize..6) {
        let fence = "#".repeat(hashes);
        // A raw string whose body contains a quote followed by FEWER
        // hashes than the fence — must not terminate early.
        let inner_fence = "#".repeat(hashes.saturating_sub(1));
        let src = format!(
            "let s = r{fence}\"body \"{inner_fence} forbidden_marker\"{fence}; let tail = 3;"
        );
        let out = lex(&src);
        prop_assert!(!out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "forbidden_marker"));
        prop_assert!(out.tokens.iter().any(|t| t.text == "tail"));
    }
}
