//! End-to-end tests of the `slm-lint` binary: exit codes and output for
//! the fixture crate, the real workspace, and the shape-contract pass.

use std::path::Path;
use std::process::{Command, Output};

fn slm_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slm-lint"))
        .args(args)
        .output()
        .expect("slm-lint binary runs")
}

fn fixture_root() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/bad-crate").to_string()
}

fn repo_root() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    root.display().to_string()
}

#[test]
fn fixture_crate_fails_with_rustc_style_findings() {
    let out = slm_lint(&["--root", &fixture_root()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("src/lib.rs:7:7: no-unwrap:"), "{stdout}");
    assert!(stdout.contains("Cargo.toml:12:1: deps-policy:"), "{stdout}");
    assert!(stdout.contains("bad-waiver"), "{stdout}");
}

#[test]
fn fixture_crate_json_output_is_machine_readable() {
    let out = slm_lint(&["--root", &fixture_root(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"clean\":false"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"no-print\""), "{stdout}");
}

#[test]
fn real_workspace_is_clean_post_burn_down() {
    // The PR's acceptance bar: the checked-in allowlist exactly covers
    // the remaining findings, so the workspace lints clean.
    let out = slm_lint(&["--root", &repo_root()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stdout}\n{stderr}");
}

#[test]
fn shapes_pass_accepts_every_profile() {
    let out = slm_lint(&["--root", &repo_root(), "--shapes-only"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("profile wiring(s) verified"), "{stdout}");
}

#[test]
fn miswire_self_test_is_rejected_with_a_per_layer_trace() {
    let out = slm_lint(&["--root", &repo_root(), "--shapes-only", "--miswire"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SHAPE ERROR"), "{stderr}");
    assert!(stderr.contains("input_dim 17"), "{stderr}");
    assert!(stderr.contains("lstm"), "{stderr}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = slm_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
